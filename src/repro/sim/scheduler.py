"""Warp issue policies.

Each SM has ``warp_schedulers`` independent schedulers; warps are distributed
across them at TB dispatch (Section 2.2).  The Table 1 policy is **GTO**
(greedy-then-oldest): keep issuing from the last warp while it stays ready,
otherwise fall back to the oldest ready warp.  **LRR** (loose round robin) is
provided for ablations.

The quota filter of the Enhanced Warp Scheduler (Section 3.3) enters here as
the ``quota_ok`` boolean list indexed by kernel: a warp whose kernel has
exhausted its quota is invisible to selection, leaving the underlying policy
untouched — "the original warp scheduling algorithm is used throughout the
lifetime of kernels, except that kernels are throttled once their quotas are
exhausted."

Two interchangeable implementations exist, selected by
``make_scheduler(..., core=...)`` (normally wired from
``GPUConfig.engine_core``); both produce identical selection sequences:

``core="event"`` (default)
    The event-driven two-tier structure.  Each scheduler keeps a **ready
    list** — warps currently able to issue, ordered oldest-first by a
    monotonically assigned insertion ``age`` (which is exactly GTO's
    "oldest" order and, because the warp list only appends and removes,
    also the relative LRR rotation order) — and per-kernel **pending
    min-heaps** keyed by ``ready_at``.  A warp that issues a long-latency
    instruction migrates from the ready list to its kernel's pending heap
    and is drained back lazily at select time once due, so a stalled
    scheduler costs O(1) per select and an issuing scheduler amortized
    O(log warps).  Pending heaps are per kernel so the sleep computation
    can exclude quota-throttled kernels exactly as the scan does.

``core="scan"``
    The reference implementation: an O(warps) scan per select.  Kept
    verbatim for differential tests and as executable documentation.

``core="batch"``
    Reuses the event-core classes: the batch engine core
    (:mod:`repro.sim.batch`) only steps schedulers on its scalar-fallback
    path, and rebuilds their queues via ``rebuild_ready_state`` after each
    vectorised window.

Schedulers keep a ``sleep_until`` cycle: when selection finds nothing ready
the earliest wake-up among eligible warps is cached so stalled schedulers
cost one comparison per cycle.  Any event that can create readiness out of
band — TB dispatch, barrier release, quota refresh, unfreeze — must call
``wake()``; an event that changes a parked warp's ``ready_at`` outside the
issue path (barrier release) must additionally call ``requeue(warp)`` so the
event-driven queues re-track the warp (a no-op on the scan core).

Every write to ``sleep_until`` invokes the optional ``notify`` callback so
the owning SM can maintain a cached minimum over its schedulers (the
engine's per-SM sleep skipping and idle-skip read that cache instead of
rescanning every scheduler of every SM each cycle).
"""

from __future__ import annotations

import operator
from heapq import heappop, heappush
from typing import List, Optional

from repro.sim.warp import Warp

_NEVER = 1 << 62

_BY_AGE = operator.attrgetter("age")

#: Stalls shorter than this stay in the ready list (the selection scan just
#: skips them, as the reference core does) instead of migrating to a pending
#: heap.  Pipeline latencies (ALU/SFU/shared/L1) sit below this, memory
#: latencies (L2/DRAM) far above, so only long-latency warps pay heap churn.
_SHORT_STALL = 32

#: Banking long stalls into the pending heaps only pays off once the warp
#: pool is large enough that scanning past stalled warps costs more than
#: heap maintenance; below this size every stall stays in the ready list
#: and selection degenerates to the reference core's cheap scan (per-SM
#: sleep skipping at the engine still applies either way).
_BANK_MIN_WARPS = 16


class _SchedulerBase:
    """Shared warp hosting, back-references, and sleep bookkeeping."""

    __slots__ = ("warps", "last", "sleep_until", "notify")

    def __init__(self, notify=None) -> None:
        self.warps: List[Warp] = []
        self.last: Optional[Warp] = None
        self.sleep_until = 0
        self.notify = notify

    def add_warp(self, warp: Warp) -> None:
        warp.sched = self
        warp.pos = len(self.warps)
        self.warps.append(warp)
        self.wake()

    def remove_warp(self, warp: Warp) -> None:
        warps = self.warps
        index = warp.pos
        if not (0 <= index < len(warps) and warps[index] is warp):
            index = warps.index(warp)
        del warps[index]
        for i in range(index, len(warps)):
            warps[i].pos = i
        warp.sched = None
        warp.pos = -1
        if self.last is warp:
            self.last = None
        self.wake()

    def requeue(self, warp: Warp) -> None:
        """Re-track a warp whose ``ready_at`` changed out of band."""

    def wake(self) -> None:
        if self.sleep_until:
            self.sleep_until = 0
            if self.notify is not None:
                self.notify()

    def _sleep(self, until: int) -> None:
        self.sleep_until = until
        if self.notify is not None:
            self.notify()


class GTOScheduler(_SchedulerBase):
    """Greedy-then-oldest warp scheduler (event-driven two-tier core)."""

    __slots__ = ("ready", "_pending", "_age", "_next_due")

    def __init__(self, notify=None) -> None:
        super().__init__(notify)
        #: Warps believed ready, oldest (lowest insertion age) first.
        self.ready: List[Warp] = []
        #: kernel_idx -> min-heap of (ready_at, age, warp) wake entries.
        self._pending = {}
        self._age = 0
        #: Lower bound on the earliest pending entry across all kernels;
        #: lets select() gate the drain on one integer comparison.
        self._next_due = _NEVER

    # --------------------------------------------------------------- hosting

    def add_warp(self, warp: Warp) -> None:
        warp.age = self._age
        self._age += 1
        warp.in_ready = False
        warp.pending_key = None
        super().add_warp(warp)
        self._push(warp)

    def remove_warp(self, warp: Warp) -> None:
        if warp.in_ready:
            self.ready.remove(warp)
            warp.in_ready = False
        warp.pending_key = None  # any heap entry left behind is now stale
        super().remove_warp(warp)

    def requeue(self, warp: Warp) -> None:
        if warp.state != 0 or warp.in_ready:
            return  # not schedulable, or the ready list already tracks it
        if warp.pending_key == warp.ready_at:
            return  # the live pending entry is already correct
        self._push(warp)

    def _push(self, warp: Warp) -> None:
        heap = self._pending.get(warp.kernel_idx)
        if heap is None:
            heap = self._pending[warp.kernel_idx] = []
        key = warp.ready_at
        heappush(heap, (key, warp.age, warp))
        warp.pending_key = key
        if key < self._next_due:
            self._next_due = key

    # ---------------------------------------------------------------- queues

    def _drain(self, cycle: int) -> None:
        """Move pending warps that have come due into the ready list."""
        drained = None
        next_due = _NEVER
        for heap in self._pending.values():
            while heap and heap[0][0] <= cycle:
                ready_at, _age, warp = heappop(heap)
                if (warp.pending_key != ready_at or warp.sched is not self
                        or warp.in_ready):
                    continue  # stale entry superseded by a later push
                warp.pending_key = None
                if warp.state != 0:
                    continue  # froze or retired while parked
                if warp.ready_at > cycle:
                    self._push(warp)  # readiness moved; track the new time
                    continue
                warp.in_ready = True
                if drained is None:
                    drained = [warp]
                else:
                    drained.append(warp)
            if heap and heap[0][0] < next_due:
                next_due = heap[0][0]
        # Re-pushes above land in the same per-kernel heap the entry came
        # from, so the tops seen here already reflect them.
        self._next_due = next_due
        if drained:
            # Timsort merges the sorted ready list and the drained run in
            # near-linear time, restoring oldest-first order.
            self.ready.extend(drained)
            self.ready.sort(key=_BY_AGE)

    def _sleep_on_pending(self, quota_ok, earliest: int = _NEVER) -> None:
        """Sleep until the earliest pending warp of a quota-eligible kernel
        (exactly the scan core's "earliest eligible ready_at").

        ``earliest`` seeds the minimum with the wake-up of any short-stalled
        quota-eligible warps the caller saw while scanning the ready list.
        """
        next_due = _NEVER
        for kernel_idx, heap in self._pending.items():
            while heap:  # prune stale / unschedulable tops lazily
                ready_at, _age, warp = heap[0]
                if (warp.pending_key == ready_at and warp.sched is self
                        and not warp.in_ready and warp.state == 0):
                    break
                heappop(heap)
                if warp.pending_key == ready_at and warp.sched is self:
                    warp.pending_key = None
            if heap:
                top = heap[0][0]
                if top < next_due:
                    next_due = top
                if quota_ok[kernel_idx] and top < earliest:
                    earliest = top
        self._next_due = next_due  # pruning made the bound exact again
        self._sleep(earliest)

    # ------------------------------------------------------------- selection

    def select(self, cycle: int, quota_ok) -> Optional[Warp]:
        """Pick the warp to issue this cycle, or None."""
        if cycle < self.sleep_until:
            return None
        if self._next_due <= cycle:
            self._drain(cycle)
        last = self.last
        if (last is not None and last.state == 0 and last.ready_at <= cycle
                and quota_ok[last.kernel_idx]):
            return last
        ready = self.ready
        n = len(ready)
        if n:
            # Fast path: the oldest tracked warp is usually the pick.
            warp = ready[0]
            if (warp.ready_at <= cycle and warp.state == 0
                    and warp.sched is self and quota_ok[warp.kernel_idx]):
                self.last = warp
                return warp
        pick = None
        stalled_min = _NEVER
        write = 0
        read = 0
        while read < n:
            warp = ready[read]
            read += 1
            if warp.state != 0 or warp.sched is not self:
                warp.in_ready = False  # prune retired / frozen / removed
                continue
            ready_at = warp.ready_at
            if ready_at > cycle:
                if (ready_at - cycle > _SHORT_STALL
                        and len(self.warps) >= _BANK_MIN_WARPS):
                    warp.in_ready = False  # long stall: bank in pending
                    self._push(warp)
                    continue
                ready[write] = warp  # short stall: cheaper to keep scanning
                write += 1
                if quota_ok[warp.kernel_idx] and ready_at < stalled_min:
                    stalled_min = ready_at
                continue
            ready[write] = warp
            write += 1
            if quota_ok[warp.kernel_idx]:
                pick = warp  # oldest eligible ready warp
                break
        if write != read:
            ready[write:read] = []
        if pick is not None:
            self.last = pick
            return pick
        if self._next_due == _NEVER:
            # No live pending entries (the bound is exact at _NEVER): the
            # short-stalled ready warps alone decide the wake-up.
            self._sleep(stalled_min)
        else:
            self._sleep_on_pending(quota_ok, stalled_min)
        return None

    # ------------------------------------------------------- batch sync-out

    def rebuild_ready_state(self) -> None:
        """Reset the two-tier queues to the canonical post-window state.

        The batch core mutates ``pc``/``ready_at`` on this scheduler's warps
        behind the queues' back; afterwards every cached wake entry is
        potentially stale.  Rebuild from scratch: all schedulable warps go
        to the ready list in age order (``warps`` order), the pending heaps
        empty, and the sleep state clears.  ``pending_key`` is nulled on
        **every** hosted warp — including parked AT_BARRIER/FROZEN ones —
        because ``requeue`` skips re-pushing a warp whose live pending entry
        looks current, and after this wipe no entry is live.
        """
        ready = []
        for warp in self.warps:
            warp.pending_key = None
            if warp.state == 0:
                warp.in_ready = True
                ready.append(warp)
            else:
                warp.in_ready = False
        self.ready = ready
        self._pending.clear()
        self._next_due = _NEVER
        # The caller notifies the SM once per window (sm._sleep_changed());
        # writing through _sleep here would fire the callback per scheduler.
        self.sleep_until = 0

    # ------------------------------------------------------------ inspection

    def _ready_now(self, cycle: int) -> List[Warp]:
        """Validated ready warps this cycle (compacts the ready list)."""
        if self._next_due <= cycle:
            self._drain(cycle)
        ready = self.ready
        out = []
        write = 0
        for warp in ready:
            if warp.state != 0 or warp.sched is not self:
                warp.in_ready = False
                continue
            ready_at = warp.ready_at
            if ready_at > cycle:
                if (ready_at - cycle > _SHORT_STALL
                        and len(self.warps) >= _BANK_MIN_WARPS):
                    warp.in_ready = False
                    self._push(warp)
                else:
                    ready[write] = warp
                    write += 1
                continue
            ready[write] = warp
            write += 1
            out.append(warp)
        del ready[write:]
        return out

    def ready_count(self, cycle: int, quota_ok) -> int:
        """Warps that could issue this cycle (for idle-warp sampling)."""
        count = 0
        for warp in self._ready_now(cycle):
            if quota_ok[warp.kernel_idx]:
                count += 1
        return count

    def sample_ready(self, cycle: int, idle_sum: List[int]) -> None:
        """Accumulate per-kernel ready-warp counts, quota-blind (Sec 3.6)."""
        for warp in self._ready_now(cycle):
            idle_sum[warp.kernel_idx] += 1


class LRRScheduler(GTOScheduler):
    """Loose round robin: rotate priority among ready warps.

    Shares the GTO two-tier queues; selection picks the ready warp with the
    smallest circular distance from the rotation index in warp-list order
    (``Warp.pos``), which is exactly what the reference scan's first hit is.
    """

    __slots__ = ("_next_index",)

    def __init__(self, notify=None) -> None:
        super().__init__(notify)
        self._next_index = 0

    def select(self, cycle: int, quota_ok) -> Optional[Warp]:
        if cycle < self.sleep_until:
            return None
        count = len(self.warps)
        if count == 0:
            self._sleep(_NEVER)
            return None
        if self._next_due <= cycle:
            self._drain(cycle)
        ready = self.ready
        start = self._next_index % count
        pick = None
        best_offset = count
        stalled_min = _NEVER
        write = 0
        for warp in ready:
            if warp.state != 0 or warp.sched is not self:
                warp.in_ready = False
                continue
            ready_at = warp.ready_at
            if ready_at > cycle:
                if (ready_at - cycle > _SHORT_STALL
                        and count >= _BANK_MIN_WARPS):
                    warp.in_ready = False
                    self._push(warp)
                    continue
                ready[write] = warp
                write += 1
                if quota_ok[warp.kernel_idx] and ready_at < stalled_min:
                    stalled_min = ready_at
                continue
            ready[write] = warp
            write += 1
            if quota_ok[warp.kernel_idx]:
                offset = warp.pos - start
                if offset < 0:
                    offset += count
                if offset < best_offset:
                    best_offset = offset
                    pick = warp
        del ready[write:]
        if pick is not None:
            self._next_index = (pick.pos + 1) % count
            self.last = pick
            return pick
        if self._next_due == _NEVER:
            self._sleep(stalled_min)
        else:
            self._sleep_on_pending(quota_ok, stalled_min)
        return None


class ScanGTOScheduler(_SchedulerBase):
    """Reference GTO: O(warps) scan per select (the pre-event-core code)."""

    __slots__ = ()

    def select(self, cycle: int, quota_ok) -> Optional[Warp]:
        """Pick the warp to issue this cycle, or None."""
        if cycle < self.sleep_until:
            return None
        last = self.last
        if (last is not None and last.state == 0 and last.ready_at <= cycle
                and quota_ok[last.kernel_idx]):
            return last
        earliest = _NEVER
        for warp in self.warps:
            if warp.state != 0 or not quota_ok[warp.kernel_idx]:
                continue
            if warp.ready_at <= cycle:
                self.last = warp
                return warp
            if warp.ready_at < earliest:
                earliest = warp.ready_at
        self._sleep(earliest)
        return None

    def ready_count(self, cycle: int, quota_ok) -> int:
        """Warps that could issue this cycle (for idle-warp sampling)."""
        count = 0
        for warp in self.warps:
            if warp.state == 0 and warp.ready_at <= cycle and quota_ok[warp.kernel_idx]:
                count += 1
        return count

    def sample_ready(self, cycle: int, idle_sum: List[int]) -> None:
        """Accumulate per-kernel ready-warp counts, quota-blind (Sec 3.6)."""
        for warp in self.warps:
            if warp.state == 0 and warp.ready_at <= cycle:
                idle_sum[warp.kernel_idx] += 1


class ScanLRRScheduler(ScanGTOScheduler):
    """Reference LRR: rotate priority among ready warps by list scan."""

    __slots__ = ("_next_index",)

    def __init__(self, notify=None) -> None:
        super().__init__(notify)
        self._next_index = 0

    def select(self, cycle: int, quota_ok) -> Optional[Warp]:
        if cycle < self.sleep_until:
            return None
        warps = self.warps
        count = len(warps)
        if count == 0:
            self._sleep(_NEVER)
            return None
        earliest = _NEVER
        start = self._next_index % count
        for offset in range(count):
            warp = warps[(start + offset) % count]
            if warp.state != 0 or not quota_ok[warp.kernel_idx]:
                continue
            if warp.ready_at <= cycle:
                self._next_index = (start + offset + 1) % count
                self.last = warp
                return warp
            if warp.ready_at < earliest:
                earliest = warp.ready_at
        self._sleep(earliest)
        return None


_CORES = {
    ("gto", "event"): GTOScheduler,
    ("lrr", "event"): LRRScheduler,
    ("gto", "scan"): ScanGTOScheduler,
    ("lrr", "scan"): ScanLRRScheduler,
    # The batch core's scalar-fallback path IS the event core: between
    # vectorised windows (repro.sim.batch) the engine steps these same
    # schedulers, whose queues each window rebuilds at sync-out.
    ("gto", "batch"): GTOScheduler,
    ("lrr", "batch"): LRRScheduler,
}


def make_scheduler(policy: str, notify=None, core: str = "event"):
    """Factory for the configured issue policy and core variant."""
    try:
        cls = _CORES[(policy, core)]
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy/core combination {policy!r}/{core!r}"
        ) from None
    return cls(notify)
