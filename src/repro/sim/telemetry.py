"""Structured per-epoch telemetry for the QoS control loop.

When a :class:`TelemetryRecorder` is attached to a
:class:`~repro.sim.engine.GPUSimulator`, the engine emits one typed
:class:`EpochRecord` per completed epoch (plus a trailing partial epoch at
:meth:`GPUSimulator.finalize_telemetry`).  Each record captures what the
paper's Figure 3 loop saw and decided that epoch:

* per-kernel measurement (retired delta, epoch IPC, cumulative IPC, live
  TB residency) from the engine's :class:`~repro.sim.policy.EpochView`;
* per-kernel quota control terms — whole-kernel grant, rollover residual
  folded into it, alpha, and the IPC goal in force — noted by the policy
  through :meth:`~repro.sim.policy.PolicyContext.note_quota` (``None``
  for policies that do not drive quotas);
* TB moves (partial context switches) with victim SM/kernel and drain
  latency, recorded at :meth:`GPUSimulator.evict_tb`;
* sleep-skip counters: ``sleep_skipped_sm_cycles`` is the SM-cycles in
  the epoch during which an SM issued nothing (the opportunity the event
  core's per-SM sleep skipping exploits) and ``idle_jump_cycles`` the
  whole-GPU zero-issue cycles (the whole-GPU idle jump's opportunity).
  Both are defined from the issue trajectory — not from which cycles a
  particular core actually skipped — so records stay byte-identical
  between ``engine_core="event"`` and ``"scan"``.

Recording is strictly observational — the recorder never touches machine
state, and every value is derived from state the simulator computes
anyway — so results with telemetry on and off are record-identical.  The
module also owns the dict round-trip (:func:`epoch_record_to_dict` /
:func:`epoch_record_from_dict`) and the strict schema check
(:func:`validate_epoch_dict`) used by the case cache and the JSONL trace
exporter.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TBMove:
    """One partial context switch: ``kernel_idx`` lost a TB on ``sm_id``.

    ``drain_cycles`` is the modelled context-save latency — the cycles
    until the TB's resources are actually free again.
    """

    cycle: int
    sm_id: int
    kernel_idx: int
    drain_cycles: int


@dataclass(frozen=True)
class KernelEpochRecord:
    """One kernel's measurement + control state for one epoch.

    The quota fields are ``None`` for policies that do not drive quotas
    (or do not report them): ``quota_granted`` is the whole-kernel grant
    issued at this epoch's opening refresh, ``quota_carried`` the rollover
    residual folded into that grant, ``quota_residual`` the unspent quota
    summed over SMs when the epoch closes (before the next refresh),
    ``alpha`` the boost factor and ``ipc_goal`` the target (artificial
    goal for non-QoS kernels) in force.
    """

    name: str
    retired: int
    epoch_ipc: float
    cumulative_ipc: float
    total_tbs: int
    quota_granted: Optional[float] = None
    quota_carried: Optional[float] = None
    quota_residual: Optional[float] = None
    alpha: Optional[float] = None
    ipc_goal: Optional[float] = None
    #: Controller internals (repro.controllers): the normalised goal
    #: residual acted on, the anti-windup-clamped integral term (PID), and
    #: the model-predicted epoch IPC (MPC).  None for kernels the policy's
    #: controller holds no such state for.
    ctrl_error: Optional[float] = None
    ctrl_integral: Optional[float] = None
    ctrl_prediction: Optional[float] = None


@dataclass(frozen=True)
class EpochRecord:
    """Everything observed in one epoch ``[start_cycle, end_cycle)``."""

    epoch_index: int
    start_cycle: int
    end_cycle: int
    kernels: Tuple[KernelEpochRecord, ...]
    tb_moves: Tuple[TBMove, ...]
    sleep_skipped_sm_cycles: int
    idle_jump_cycles: int
    pending_preemptions: int


class TelemetryRecorder:
    """Accumulates :class:`EpochRecord`s as the simulation advances.

    The engine opens an epoch at each boundary and closes the previous one;
    within an epoch the policy contributes quota notes and the engine
    contributes TB moves.  ``records`` is the completed stream.
    """

    def __init__(self) -> None:
        self.records: List[EpochRecord] = []
        self.finalized = False
        self._epoch_index = 0
        self._start_cycle = 0
        self._quota_notes: Dict[int, Tuple] = {}
        self._tb_moves: List[TBMove] = []

    def open_epoch(self, epoch_index: int, cycle: int) -> None:
        self._epoch_index = epoch_index
        self._start_cycle = cycle
        self._quota_notes = {}
        self._tb_moves = []

    def note_quota(self, kernel_idx: int, granted: float, carried: float,
                   alpha: Optional[float], ipc_goal: Optional[float],
                   ctrl_error: Optional[float] = None,
                   ctrl_integral: Optional[float] = None,
                   ctrl_prediction: Optional[float] = None) -> None:
        self._quota_notes[kernel_idx] = (granted, carried, alpha, ipc_goal,
                                         ctrl_error, ctrl_integral,
                                         ctrl_prediction)

    def note_tb_move(self, cycle: int, sm_id: int, kernel_idx: int,
                     drain_cycles: int) -> None:
        self._tb_moves.append(TBMove(cycle=cycle, sm_id=sm_id,
                                     kernel_idx=kernel_idx,
                                     drain_cycles=drain_cycles))

    def close_epoch(self, *, end_cycle: int, names: Sequence[str],
                    retired: Sequence[int], epoch_ipc: Sequence[float],
                    cumulative_ipc: Sequence[float],
                    total_tbs: Sequence[int],
                    quota_residual: Sequence[float],
                    sleep_skipped_sm_cycles: int, idle_jump_cycles: int,
                    pending_preemptions: int) -> EpochRecord:
        kernels = []
        for idx, name in enumerate(names):
            note = self._quota_notes.get(idx)
            if note is None:
                granted = carried = alpha = goal = residual = None
                error = integral = prediction = None
            else:
                granted, carried, alpha, goal, error, integral, prediction = note
                residual = quota_residual[idx]
            kernels.append(KernelEpochRecord(
                name=name, retired=retired[idx], epoch_ipc=epoch_ipc[idx],
                cumulative_ipc=cumulative_ipc[idx], total_tbs=total_tbs[idx],
                quota_granted=granted, quota_carried=carried,
                quota_residual=residual, alpha=alpha, ipc_goal=goal,
                ctrl_error=error, ctrl_integral=integral,
                ctrl_prediction=prediction))
        record = EpochRecord(
            epoch_index=self._epoch_index, start_cycle=self._start_cycle,
            end_cycle=end_cycle, kernels=tuple(kernels),
            tb_moves=tuple(self._tb_moves),
            sleep_skipped_sm_cycles=sleep_skipped_sm_cycles,
            idle_jump_cycles=idle_jump_cycles,
            pending_preemptions=pending_preemptions)
        self.records.append(record)
        return record


# --------------------------------------------------------------- dict codec

def epoch_record_to_dict(record: EpochRecord) -> Dict[str, Any]:
    """JSON-ready plain-dict form of an :class:`EpochRecord`."""
    return dataclasses.asdict(record)


def epoch_record_from_dict(payload: Mapping[str, Any]) -> EpochRecord:
    """Inverse of :func:`epoch_record_to_dict`."""
    kernels = tuple(KernelEpochRecord(**dict(entry))
                    for entry in payload["kernels"])
    tb_moves = tuple(TBMove(**dict(entry)) for entry in payload["tb_moves"])
    fields = {key: payload[key] for key in (
        "epoch_index", "start_cycle", "end_cycle",
        "sleep_skipped_sm_cycles", "idle_jump_cycles",
        "pending_preemptions")}
    return EpochRecord(kernels=kernels, tb_moves=tb_moves, **fields)


# ----------------------------------------------------------- schema checks

_EPOCH_INT_FIELDS = ("epoch_index", "start_cycle", "end_cycle",
                     "sleep_skipped_sm_cycles", "idle_jump_cycles",
                     "pending_preemptions")
_KERNEL_INT_FIELDS = ("retired", "total_tbs")
_KERNEL_FLOAT_FIELDS = ("epoch_ipc", "cumulative_ipc")
_KERNEL_OPT_FIELDS = ("quota_granted", "quota_carried", "quota_residual",
                      "alpha", "ipc_goal", "ctrl_error", "ctrl_integral",
                      "ctrl_prediction")
_TB_MOVE_FIELDS = ("cycle", "sm_id", "kernel_idx", "drain_cycles")


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return _is_int(value) or isinstance(value, float)


def validate_epoch_dict(payload: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the
    :class:`EpochRecord` schema exactly (field set and field types)."""
    expected = {field.name for field in dataclasses.fields(EpochRecord)}
    got = set(payload)
    if got != expected:
        raise ValueError(
            f"epoch record fields mismatch: missing={sorted(expected - got)} "
            f"unexpected={sorted(got - expected)}")
    for key in _EPOCH_INT_FIELDS:
        if not _is_int(payload[key]):
            raise ValueError(f"epoch field {key!r} must be an int, "
                             f"got {payload[key]!r}")
    if not isinstance(payload["kernels"], (list, tuple)):
        raise ValueError("epoch field 'kernels' must be a list")
    kernel_expected = {field.name
                       for field in dataclasses.fields(KernelEpochRecord)}
    for entry in payload["kernels"]:
        if set(entry) != kernel_expected:
            raise ValueError(
                f"kernel record fields mismatch: got {sorted(entry)}")
        if not isinstance(entry["name"], str):
            raise ValueError("kernel field 'name' must be a string")
        for key in _KERNEL_INT_FIELDS:
            if not _is_int(entry[key]):
                raise ValueError(f"kernel field {key!r} must be an int, "
                                 f"got {entry[key]!r}")
        for key in _KERNEL_FLOAT_FIELDS:
            if not _is_number(entry[key]):
                raise ValueError(f"kernel field {key!r} must be a number, "
                                 f"got {entry[key]!r}")
        for key in _KERNEL_OPT_FIELDS:
            if entry[key] is not None and not _is_number(entry[key]):
                raise ValueError(f"kernel field {key!r} must be a number "
                                 f"or null, got {entry[key]!r}")
    if not isinstance(payload["tb_moves"], (list, tuple)):
        raise ValueError("epoch field 'tb_moves' must be a list")
    for entry in payload["tb_moves"]:
        if set(entry) != set(_TB_MOVE_FIELDS):
            raise ValueError(
                f"tb move fields mismatch: got {sorted(entry)}")
        for key in _TB_MOVE_FIELDS:
            if not _is_int(entry[key]):
                raise ValueError(f"tb move field {key!r} must be an int, "
                                 f"got {entry[key]!r}")
