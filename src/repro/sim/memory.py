"""The global memory subsystem: per-SM L1s, interconnect, MCs with L2 slices.

Requests flow L1 -> interconnect -> memory controller (address-interleaved by
line) -> L2 slice -> DRAM.  Each controller services one line-sized request
every ``mc_service_interval`` core cycles; requests queue FCFS, so the
*completion time* of a request reflects both latency and the bandwidth
currently consumed by every co-running kernel.  This queueing is the paper's
"indirectly controlled" resource (Figure 2c): quota throttling reduces a
kernel's request rate and thereby frees bandwidth for others (Section 4.2's
explanation of the M+M results).

Fidelity details:

* **L1** is read-allocate and write-through/no-allocate (NVIDIA-style):
  stores bypass L1 and always consume controller bandwidth.
* **L2** is write-back write-allocate: dirty victims charge an extra
  controller service slot on eviction (store-heavy kernels pay roughly
  double bandwidth, as on real parts).
* **MSHRs** bound each L1's outstanding misses: when all are busy, the next
  miss cannot even leave the SM until one returns — the structural hazard
  that caps a single kernel's memory-level parallelism.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.config import GPUConfig
from repro.sim.cache import Cache


class KernelMemoryStats:
    """Per-kernel memory traffic counters (feeds the power model too)."""

    __slots__ = ("requests", "l1_hits", "l2_hits", "dram_accesses",
                 "write_requests", "mshr_stalls")

    def __init__(self) -> None:
        self.requests = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.dram_accesses = 0
        self.write_requests = 0
        self.mshr_stalls = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "dram_accesses": self.dram_accesses,
            "write_requests": self.write_requests,
            "mshr_stalls": self.mshr_stalls,
        }


class DRAMBanks:
    """Open-row DRAM timing behind one controller.

    Rows hold ``row_lines`` consecutive cache lines; consecutive rows
    interleave across banks.  An access to a bank's open row pays the CAS
    latency only; any other row pays the full precharge+activate+CAS
    (row-miss) latency.  Streaming kernels therefore see mostly row hits
    and irregular gather/scatter kernels mostly row misses — the classic
    locality gap the workload models rely on.
    """

    __slots__ = ("num_banks", "row_lines", "open_rows", "row_hits",
                 "row_misses")

    def __init__(self, num_banks: int, row_lines: int):
        if num_banks < 0 or row_lines <= 0:
            raise ValueError("invalid DRAM geometry")
        self.num_banks = num_banks
        self.row_lines = row_lines
        self.open_rows = [-1] * num_banks
        self.row_hits = 0
        self.row_misses = 0

    def access_latency(self, line: int, hit_latency: int,
                       miss_latency: int) -> int:
        """Latency for one line, updating the bank's open row."""
        if self.num_banks == 0:
            return miss_latency
        row = line // self.row_lines
        bank = row % self.num_banks
        if self.open_rows[bank] == row:
            self.row_hits += 1
            return hit_latency
        self.open_rows[bank] = row
        self.row_misses += 1
        return miss_latency


class MemoryController:
    """One MC: a FCFS bandwidth queue, a write-back L2 slice, DRAM banks."""

    __slots__ = ("l2", "service_interval", "next_free", "serviced",
                 "writebacks", "dram")

    def __init__(self, l2: Cache, service_interval: int,
                 dram: DRAMBanks = None):
        self.l2 = l2
        self.service_interval = service_interval
        self.next_free = 0
        self.serviced = 0
        self.writebacks = 0
        self.dram = dram if dram is not None else DRAMBanks(0, 16)

    def service(self, line: int, is_write: bool, now: int,
                l2_hit_latency: int, dram_latency: int,
                dram_row_hit_latency: int = None):
        """Queue one request; returns (completion_cycle, hit_l2).

        A dirty L2 eviction consumes a second service slot (the write-back
        to DRAM) but does not delay this request's completion — the victim
        buffer hides it, the bandwidth cost is what matters.
        """
        start = now if now > self.next_free else self.next_free
        self.next_free = start + self.service_interval
        self.serviced += 1
        hit, writeback = self.l2.access_rw(line, is_write)
        if writeback is not None:
            self.next_free += self.service_interval
            self.writebacks += 1
        if hit:
            return start + l2_hit_latency, True
        if dram_row_hit_latency is None:
            dram_row_hit_latency = dram_latency
        latency = self.dram.access_latency(line, dram_row_hit_latency,
                                           dram_latency)
        return start + latency, False

    def queue_delay(self, now: int) -> int:
        """Cycles a request arriving now would wait before service."""
        return max(0, self.next_free - now)


class MemorySubsystem:
    """All memory structures shared by the SMs of one simulated GPU."""

    def __init__(self, config: GPUConfig, num_kernels: int):
        mem = config.memory
        self._line_size = mem.line_size
        self._latency = mem.latency
        self._mshr_limit = mem.l1_mshrs
        self.l1s: List[Cache] = [
            Cache(mem.l1_size, mem.l1_assoc, mem.line_size)
            for _ in range(config.num_sms)
        ]
        # Per-SM MSHR occupancy: a heap of outstanding-miss return times.
        self._mshrs: List[List[int]] = [[] for _ in range(config.num_sms)]
        self.controllers: List[MemoryController] = [
            MemoryController(
                Cache(mem.l2_slice_size, mem.l2_assoc, mem.line_size),
                mem.mc_service_interval,
                DRAMBanks(mem.dram_banks, mem.dram_row_lines),
            )
            for _ in range(config.num_mcs)
        ]
        self.kernel_stats: List[KernelMemoryStats] = [
            KernelMemoryStats() for _ in range(num_kernels)
        ]

    def add_kernel(self) -> None:
        """Open a stats slot for a kernel launched mid-run."""
        self.kernel_stats.append(KernelMemoryStats())

    @property
    def line_size(self) -> int:
        return self._line_size

    def warp_access(self, sm_id: int, kernel_idx: int, lines: Sequence[int],
                    is_write: bool, now: int) -> int:
        """Issue one warp's coalesced request set; returns completion cycle.

        A warp instruction may fan out into several line requests (divergent
        or uncoalesced access); the warp resumes when the slowest returns.
        Stores are retired from the warp's perspective immediately, but they
        still occupy controller bandwidth, so the returned cycle for writes
        is the drain time of the store traffic (callers typically ignore it).
        """
        lat = self._latency
        l1 = self.l1s[sm_id]
        mshrs = self._mshrs[sm_id]
        stats = self.kernel_stats[kernel_idx]
        controllers = self.controllers
        num_mcs = len(controllers)
        completion = now + lat.l1_hit
        for line in lines:
            stats.requests += 1
            if is_write:
                stats.write_requests += 1
            elif l1.access(line):
                stats.l1_hits += 1
                continue
            # Miss (or store): allocate an MSHR; block on a free one if all
            # are outstanding.
            departure = now
            while mshrs and mshrs[0] <= departure:
                heapq.heappop(mshrs)
            if len(mshrs) >= self._mshr_limit:
                departure = heapq.heappop(mshrs)
                stats.mshr_stalls += 1
            mc = controllers[line % num_mcs]
            arrival = departure + lat.interconnect
            done, hit_l2 = mc.service(line, is_write, arrival,
                                      lat.l2_hit, lat.dram,
                                      lat.dram_row_hit)
            if hit_l2:
                stats.l2_hits += 1
            else:
                stats.dram_accesses += 1
            done += lat.interconnect
            heapq.heappush(mshrs, done)
            if done > completion:
                completion = done
        return completion

    def flush_l1(self, sm_id: int) -> None:
        self.l1s[sm_id].flush()
        del self._mshrs[sm_id][:]

    def total_dram_accesses(self) -> int:
        return sum(stats.dram_accesses for stats in self.kernel_stats)

    def aggregate(self) -> dict:
        """Machine-wide counters, used by reports and the power model."""
        return {
            "l1_hits": sum(c.hits for c in self.l1s),
            "l1_misses": sum(c.misses for c in self.l1s),
            "l2_hits": sum(mc.l2.hits for mc in self.controllers),
            "l2_misses": sum(mc.l2.misses for mc in self.controllers),
            "mc_serviced": sum(mc.serviced for mc in self.controllers),
            "l2_writebacks": sum(mc.writebacks for mc in self.controllers),
            "dram_row_hits": sum(mc.dram.row_hits for mc in self.controllers),
            "dram_row_misses": sum(mc.dram.row_misses
                                   for mc in self.controllers),
        }
