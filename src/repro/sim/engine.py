"""The top-level GPU simulator.

:class:`GPUSimulator` owns the machine (SMs, memory, preemption engine) and
the launched kernels; a :class:`~repro.sim.policy.SharingPolicy` owns the
*decisions*: initial TB residency targets, per-epoch quota refresh, and
run-time TB reallocation.  Policies never see the engine — each hook
receives the engine's :class:`~repro.sim.policy.PolicyContext` (``self.ctx``),
the typed observation/actuation façade defined in :mod:`repro.sim.policy`.
The engine realises residency targets through dispatch and partial context
switch, fires epoch and quota-exhaustion callbacks, and accounts statistics.

Epochs default to ``config.epoch_length`` cycles, but a policy may pull the
next boundary forward via ``ctx.request_epoch_at`` (Elastic Epoch,
Section 3.4.3).

Passing a :class:`~repro.sim.telemetry.TelemetryRecorder` makes the engine
emit one typed :class:`~repro.sim.telemetry.EpochRecord` per epoch (see
:mod:`repro.sim.telemetry`); recording is purely observational and is off
by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import GPUConfig
from repro.kernels.spec import KernelSpec
from repro.sim.kernel_runtime import KernelRuntime
from repro.sim.memory import MemorySubsystem
from repro.sim.policy import PolicyContext, SharingPolicy
from repro.sim.preemption import PreemptionEngine
from repro.sim.sm import SM
from repro.sim.stats import KernelResult, KernelStats, SimulationResult
from repro.sim.telemetry import EpochRecord, TelemetryRecorder

__all__ = ["GPUSimulator", "LaunchedKernel", "SharingPolicy"]

_FOREVER = 1 << 62


@dataclass
class LaunchedKernel:
    """One kernel resident on the simulated GPU.

    ``ipc_goal`` is the architecture-level target derived from the
    application's QoS requirement (Section 3.2), in retired thread
    instructions per cycle, aggregated over the whole GPU.  Non-QoS kernels
    leave it ``None``.

    ``grid_tbs`` bounds the kernel's grid: ``None`` (the default) keeps the
    historical infinite-TB-stream behaviour used by the closed co-run
    studies; a positive count makes the kernel *finite* — it retires after
    that many TBs complete, which is what the online serving layer
    (:mod:`repro.serve`) builds request lifecycles on.
    """

    spec: KernelSpec
    is_qos: bool = False
    ipc_goal: Optional[float] = None
    grid_tbs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.is_qos and (self.ipc_goal is None or self.ipc_goal <= 0):
            raise ValueError(f"QoS kernel {self.spec.name} needs a positive ipc_goal")
        if self.grid_tbs is not None and self.grid_tbs <= 0:
            raise ValueError(
                f"kernel {self.spec.name} grid_tbs must be positive or None")


class GPUSimulator:
    """Cycle-level simulator of one GPU shared by ``kernels``."""

    def __init__(self, config: GPUConfig, kernels: List[LaunchedKernel],
                 policy: Optional[SharingPolicy] = None,
                 telemetry: Optional[TelemetryRecorder] = None,
                 allow_empty: bool = False):
        if not kernels and not allow_empty:
            raise ValueError("at least one kernel must be launched")
        names = [k.spec.name for k in kernels]
        if len(set(names)) != len(names):
            raise ValueError(f"kernel names must be unique, got {names}")
        self.config = config
        self.kernels = list(kernels)
        self.num_kernels = len(kernels)
        self.policy = policy if policy is not None else SharingPolicy()
        self.memory = MemorySubsystem(config, self.num_kernels)
        self.runtimes = [
            KernelRuntime(idx, launch.spec, config.memory.line_size)
            for idx, launch in enumerate(kernels)
        ]
        self.kernel_stats = [KernelStats() for _ in kernels]
        self.preemption = PreemptionEngine(config.preemption)
        self.sms: List[SM] = [
            SM(sm_id, config, self.runtimes, self.memory, self.kernel_stats,
               self._on_quota_exhausted, self._on_tb_finished,
               self._sm_wake_changed)
            for sm_id in range(config.num_sms)
        ]
        # GPU-level min over the SMs' wake hints, maintained lazily: any
        # scheduler sleep-state change bubbles up through the SM's notify
        # chain and marks it dirty.  ``_skip_idle`` reads the cached value.
        self._sm_wake_min = 0
        self._sm_wake_dirty = True
        self.tb_targets: List[List[int]] = [
            [0] * self.num_kernels for _ in range(config.num_sms)
        ]
        self._next_tb_id = [0] * self.num_kernels
        # Online-serving state (repro.serve): kernels may join mid-run via
        # launch_at and leave again when a finite grid drains.  A FIFO of
        # not-yet-activated launches plus a cheap sentinel the run loops,
        # _skip_idle and the batch probe all check, so every core processes
        # a launch at exactly the same loop-top point.
        self._pending_launches: List[Tuple[int, LaunchedKernel]] = []
        self._next_launch_at = _FOREVER
        self.kernel_active = [True] * self.num_kernels
        self.kernel_launch_cycle = [0] * self.num_kernels
        self.kernel_finish_cycle: List[Optional[int]] = [None] * self.num_kernels
        # TB ids of evicted finite-grid TBs awaiting re-dispatch.  An
        # evicted TB never resumes in this simulator; a finite kernel can
        # only drain if the id is replayed from scratch (the accounting
        # matches context-reset preemption: the partial progress is wasted).
        self._replay_tbs: List[List[int]] = [[] for _ in range(self.num_kernels)]
        #: Called as ``on_kernel_retired(kernel_idx, cycle)`` when a finite
        #: kernel's last TB completes; the serving dispatcher hangs request
        #: completion (and follow-on launches) off this.
        self.on_kernel_retired: Optional[Callable] = None
        self.ctx = PolicyContext(self)
        self.telemetry = telemetry
        # Busy-trajectory counters backing the telemetry sleep-skip fields:
        # (SM, cycle) pairs / whole-GPU cycles with at least one issue.
        # Derived idle figures are core-independent, unlike raw skip counts.
        self._tel_busy_sm_cycles = 0
        self._tel_busy_gpu_cycles = 0
        self.cycle = 0
        self.epoch_index = 0
        self.next_epoch_at = config.epoch_length
        self.sample_interval = max(1, config.epoch_length // config.idle_warp_samples)
        self.next_sample_at = self.sample_interval
        self._configured = False
        # Lazily built window machinery for the batch core (repro.sim.batch).
        self._batch_state = None
        self._measure_from_cycle = 0
        self._retired_baseline = [0] * self.num_kernels
        self._tbs_baseline = [0] * self.num_kernels
        self._memory_baseline = [dict() for _ in range(self.num_kernels)]
        self._aggregate_baseline: Dict[str, int] = {}

    # ------------------------------------------------------------- lifecycle

    def setup(self) -> None:
        """Apply the policy's initial allocation and dispatch the first TBs."""
        if self._configured:
            return
        if self.policy.uses_quotas:
            for sm in self.sms:
                sm.quota_enabled = True
        # _configured stays False during policy.setup so that target-setting
        # does not dispatch eagerly: the balanced round-robin fill below only
        # runs once every kernel's targets are in place.
        self.policy.setup(self.ctx)
        self._configured = True
        for sm in self.sms:
            self._dispatch_sm(sm, 0)
        if self.telemetry is not None:
            self.telemetry.open_epoch(0, 0)
        self.policy.on_epoch_start(self.ctx, 0, 0)

    # ---------------------------------------------------- online launch/retire

    def launch_at(self, cycle: int, launch: LaunchedKernel) -> int:
        """Register a kernel to join the machine at ``cycle``; returns the
        kernel index it will occupy.

        Launches must be registered in non-decreasing cycle order at or
        after the current cycle (the serving dispatcher feeds arrivals in
        time order, so this costs nothing and keeps activation order — and
        therefore kernel indices — identical across engine cores).  The
        kernel activates at the top of the first simulated cycle ``>=
        cycle``: the event core's idle skip, the batch core's probe horizon
        and the scan core all stop there, so all three cores see the same
        machine state at activation.
        """
        if cycle < self.cycle:
            raise ValueError(
                f"cannot launch {launch.spec.name} at cycle {cycle}: the "
                f"simulator is already at cycle {self.cycle}")
        pending = self._pending_launches
        if pending and cycle < pending[-1][0]:
            raise ValueError("launches must be registered in cycle order")
        names = set(k.spec.name for k in self.kernels)
        names.update(entry.spec.name for _, entry in pending)
        if launch.spec.name in names:
            raise ValueError(f"kernel name {launch.spec.name} already launched")
        pending.append((cycle, launch))
        if cycle < self._next_launch_at:
            self._next_launch_at = cycle
        return self.num_kernels + len(pending) - 1

    def _process_launches(self, cycle: int) -> None:
        """Activate every pending launch due at ``cycle`` (loop-top hook)."""
        pending = self._pending_launches
        while pending and pending[0][0] <= cycle:
            _due, launch = pending.pop(0)
            self._activate_launch(launch, cycle)
        self._next_launch_at = pending[0][0] if pending else _FOREVER

    def _activate_launch(self, launch: LaunchedKernel, cycle: int) -> None:
        """Append one kernel to every per-kernel structure and dispatch it."""
        idx = self.num_kernels
        self.kernels.append(launch)
        self.num_kernels = idx + 1
        self.runtimes.append(
            KernelRuntime(idx, launch.spec, self.config.memory.line_size))
        self.kernel_stats.append(KernelStats())
        self.memory.add_kernel()
        for sm in self.sms:
            sm.add_kernel()
        for targets in self.tb_targets:
            targets.append(0)
        self._next_tb_id.append(0)
        self._replay_tbs.append([])
        self.kernel_active.append(True)
        self.kernel_launch_cycle.append(cycle)
        self.kernel_finish_cycle.append(None)
        self._retired_baseline.append(0)
        self._tbs_baseline.append(0)
        self._memory_baseline.append(dict())
        if self._batch_state is not None:
            self._batch_state.add_kernel(self.runtimes[idx])
        # The policy owns residency decisions for the newcomer exactly as it
        # does at setup; the default hook greedily fills every SM.  Target
        # setting dispatches eagerly (``_configured`` is True), and
        # ``dispatch_tb -> add_warp`` runs the scheduler wake chain, so
        # sleeping SMs on the event core wake for the launch automatically.
        self.policy.on_kernel_launched(self.ctx, idx, cycle)

    def _retire_kernel(self, kernel_idx: int, cycle: int) -> None:
        """Detach a drained finite kernel: its last TB just completed.

        The kernel keeps its index (results and telemetry stay addressable)
        but stops participating: targets are zeroed, dispatch skips it, and
        the per-request bookkeeping reads ``kernel_finish_cycle``.
        """
        self.kernel_active[kernel_idx] = False
        self.kernel_finish_cycle[kernel_idx] = cycle
        for targets in self.tb_targets:
            targets[kernel_idx] = 0
        self.policy.on_kernel_retired(self.ctx, kernel_idx, cycle)
        if self.on_kernel_retired is not None:
            self.on_kernel_retired(kernel_idx, cycle)

    def _finish_eviction(self, sm: SM, tb, cycle: int) -> None:
        """Release a fully context-saved TB; finite grids replay its id."""
        if self.kernels[tb.kernel_idx].grid_tbs is not None:
            self._replay_tbs[tb.kernel_idx].append(tb.tb_id)
        sm.remove_tb(tb)
        self._dispatch_sm(sm, cycle)

    def run(self, num_cycles: int) -> None:
        """Advance the machine by ``num_cycles`` cycles.

        The event-driven core (``config.engine_core == "event"``) steps only
        SMs whose wake hint has come due: a sleeping SM costs one comparison
        per cycle instead of a full ``step()`` over its schedulers.  On
        sample cycles sleep-skipped SMs still run idle-warp sampling so the
        epoch-anchored grid observes every SM at every point.  The reference
        core (``"scan"``) steps every SM every cycle; both produce
        record-for-record identical results.
        """
        self.setup()
        end_cycle = self.cycle + num_cycles
        if self.config.engine_core == "scan":
            self._run_scan(end_cycle)
            return
        if self.config.engine_core == "batch":
            self._run_batch(end_cycle)
            return
        sms = self.sms
        preemption = self.preemption
        sample_interval = self.sample_interval
        tel_on = self.telemetry is not None
        while self.cycle < end_cycle:
            cycle = self.cycle
            next_done = preemption.next_completion
            if next_done is not None and next_done <= cycle:
                for sm, tb in preemption.pop_completed(cycle):
                    self._finish_eviction(sm, tb, cycle)
            if cycle >= self.next_epoch_at:
                self._begin_epoch(cycle)
            if cycle >= self._next_launch_at:
                self._process_launches(cycle)
            sample = cycle >= self.next_sample_at
            if sample:
                # Advance along the fixed epoch-anchored grid (never from the
                # current cycle): idle skips may overshoot several sample
                # points, and re-basing on `cycle` would drift the grid so
                # epochs stop seeing `idle_warp_samples` samples each.
                missed = (cycle - self.next_sample_at) // sample_interval
                self.next_sample_at += (missed + 1) * sample_interval
            issued = 0
            # The wake hint is re-read at each SM's turn: an event earlier
            # in this same cycle (quota refill, TB dispatch) may have woken
            # an SM later in the list, exactly as the scan core would see.
            # (Inlined wake_hint fast path: this comparison runs per SM per
            # cycle, so the clean-cache case avoids a method call.)
            if tel_on:
                busy = 0
                for sm in sms:
                    hint = (sm._wake_min if not sm._wake_dirty
                            else sm.wake_hint())
                    if hint <= cycle:
                        n = sm.step(cycle, sample)
                        if n:
                            issued += n
                            busy += 1
                    elif sample:
                        sm.sample_idle(cycle)
                if busy:
                    self._tel_busy_sm_cycles += busy
                    self._tel_busy_gpu_cycles += 1
            else:
                for sm in sms:
                    hint = (sm._wake_min if not sm._wake_dirty
                            else sm.wake_hint())
                    if hint <= cycle:
                        issued += sm.step(cycle, sample)
                    elif sample:
                        sm.sample_idle(cycle)
            self.cycle = cycle + 1
            if issued == 0:
                self._skip_idle(end_cycle)

    def _run_batch(self, end_cycle: int) -> None:
        """Windowed loop: vectorised SM advancement between control edges.

        Identical to the event loop except that on cycles where nothing
        engine-level is scheduled the core *probes* for an edge-free window
        (:meth:`repro.sim.batch.BatchState.probe`) and, when one opens,
        advances every SM to its end in bulk instead of cycle-stepping.
        Sample cycles, epoch boundaries, preemption completions and every
        cycle in which a memory access, barrier, retirement or quota
        crossing can occur run on the unmodified event path below, so all
        order-dependent machinery executes exactly the scalar code.
        """
        # Imported here so the scan/event cores never pay for (or require)
        # numpy; the batch module is still part of the code salt via the
        # engine's transitive import closure.
        from repro.sim.batch import BatchState
        state = self._batch_state
        if state is None:
            state = self._batch_state = BatchState(self)
        sms = self.sms
        preemption = self.preemption
        sample_interval = self.sample_interval
        tel_on = self.telemetry is not None
        while self.cycle < end_cycle:
            cycle = self.cycle
            next_done = preemption.next_completion
            if next_done is not None and next_done <= cycle:
                for sm, tb in preemption.pop_completed(cycle):
                    self._finish_eviction(sm, tb, cycle)
            if cycle >= self.next_epoch_at:
                self._begin_epoch(cycle)
            if cycle >= self._next_launch_at:
                self._process_launches(cycle)
            sample = cycle >= self.next_sample_at
            if sample:
                missed = (cycle - self.next_sample_at) // sample_interval
                self.next_sample_at += (missed + 1) * sample_interval
            elif cycle >= state.next_probe_at:
                # Probes never run on sample cycles, and the horizon is
                # capped at the next grid point, so windows cannot swallow
                # idle-warp samples.
                horizon = state.probe(cycle, end_cycle)
                if horizon - cycle >= state.min_window:
                    state.window_opened()
                    state.advance(cycle, horizon)
                    self.cycle = horizon
                    continue
                state.probe_failed(cycle)
            issued = 0
            if tel_on:
                busy = 0
                for sm in sms:
                    hint = (sm._wake_min if not sm._wake_dirty
                            else sm.wake_hint())
                    if hint <= cycle:
                        n = sm.step(cycle, sample)
                        if n:
                            issued += n
                            busy += 1
                    elif sample:
                        sm.sample_idle(cycle)
                if busy:
                    self._tel_busy_sm_cycles += busy
                    self._tel_busy_gpu_cycles += 1
            else:
                for sm in sms:
                    hint = (sm._wake_min if not sm._wake_dirty
                            else sm.wake_hint())
                    if hint <= cycle:
                        issued += sm.step(cycle, sample)
                    elif sample:
                        sm.sample_idle(cycle)
            self.cycle = cycle + 1
            if issued == 0:
                self._skip_idle(end_cycle)

    def _run_scan(self, end_cycle: int) -> None:
        """Reference per-cycle loop: step every SM every cycle."""
        sms = self.sms
        preemption = self.preemption
        sample_interval = self.sample_interval
        tel_on = self.telemetry is not None
        while self.cycle < end_cycle:
            cycle = self.cycle
            next_done = preemption.next_completion
            if next_done is not None and next_done <= cycle:
                for sm, tb in preemption.pop_completed(cycle):
                    self._finish_eviction(sm, tb, cycle)
            if cycle >= self.next_epoch_at:
                self._begin_epoch(cycle)
            if cycle >= self._next_launch_at:
                self._process_launches(cycle)
            sample = cycle >= self.next_sample_at
            if sample:
                missed = (cycle - self.next_sample_at) // sample_interval
                self.next_sample_at += (missed + 1) * sample_interval
            issued = 0
            if tel_on:
                busy = 0
                for sm in sms:
                    n = sm.step(cycle, sample)
                    if n:
                        issued += n
                        busy += 1
                if busy:
                    self._tel_busy_sm_cycles += busy
                    self._tel_busy_gpu_cycles += 1
            else:
                for sm in sms:
                    issued += sm.step(cycle, sample)
            self.cycle = cycle + 1
            if issued == 0:
                self._skip_idle(end_cycle)

    def _begin_epoch(self, cycle: int) -> None:
        # The context advances first so the policy hook (and the telemetry
        # flush) see the closing epoch's measurement snapshot; telemetry
        # closes before the hook runs so residual quota counters are
        # captured pre-refresh.
        view = self.ctx._advance_epoch(cycle)
        self.epoch_index += 1
        self.next_epoch_at = cycle + self.config.epoch_length
        # Re-anchor the sampling grid to the epoch boundary so every epoch
        # observes the same number of idle-warp samples even when a policy
        # pulls the boundary forward (Elastic Epoch).  The boundary cycle
        # itself is a grid point: the run loop samples it right after the
        # epoch's counters reset.
        self.next_sample_at = cycle
        tel = self.telemetry
        if tel is not None:
            self._flush_telemetry_epoch(tel, view, cycle)
            tel.open_epoch(self.epoch_index, cycle)
        self.policy.on_epoch_start(self.ctx, cycle, self.epoch_index)
        for sm in self.sms:
            sm.reset_epoch_sampling()

    def _flush_telemetry_epoch(self, tel: TelemetryRecorder, view,
                               cycle: int) -> None:
        """Close the telemetry epoch that ends at ``cycle``."""
        span = cycle - tel._start_cycle
        residual = tuple(
            sum(sm.quota_counters[idx] for sm in self.sms)
            for idx in range(self.num_kernels))
        total = tuple(self.total_tbs(idx)
                      for idx in range(self.num_kernels))
        tel.close_epoch(
            end_cycle=cycle,
            names=tuple(k.spec.name for k in self.kernels),
            retired=view.retired_delta,
            epoch_ipc=view.epoch_ipc,
            cumulative_ipc=view.cumulative_ipc,
            total_tbs=total,
            quota_residual=residual,
            sleep_skipped_sm_cycles=(self.config.num_sms * span
                                     - self._tel_busy_sm_cycles),
            idle_jump_cycles=span - self._tel_busy_gpu_cycles,
            pending_preemptions=self.preemption.pending_count)
        self._tel_busy_sm_cycles = 0
        self._tel_busy_gpu_cycles = 0

    def finalize_telemetry(self) -> Tuple[EpochRecord, ...]:
        """Flush the trailing partial epoch and return the record stream.

        Idempotent; returns ``()`` when no recorder is attached.
        """
        tel = self.telemetry
        if tel is None:
            return ()
        if not tel.finalized:
            tel.finalized = True
            if self.cycle > self.ctx._last_cycle:
                view = self.ctx._advance_epoch(self.cycle)
                self._flush_telemetry_epoch(tel, view, self.cycle)
        return tuple(tel.records)

    def _sm_wake_changed(self) -> None:
        self._sm_wake_dirty = True

    def _min_sm_wake(self) -> int:
        """Earliest wake hint across all SMs (lazily cached minimum)."""
        if self._sm_wake_dirty:
            wake = _FOREVER
            for sm in self.sms:
                hint = sm.wake_hint()
                if hint < wake:
                    wake = hint
            self._sm_wake_min = wake
            self._sm_wake_dirty = False
        return self._sm_wake_min

    def _skip_idle(self, end_cycle: int) -> None:
        """Jump over cycles in which no warp can possibly issue."""
        wake = self.next_epoch_at
        next_done = self.preemption.next_completion
        if next_done is not None and next_done < wake:
            wake = next_done
        if self.next_sample_at < wake:
            wake = self.next_sample_at
        if self._next_launch_at < wake:
            wake = self._next_launch_at
        sm_wake = self._min_sm_wake()
        if sm_wake < wake:
            wake = sm_wake
        if wake > self.cycle:
            self.cycle = min(wake, end_cycle)

    # -------------------------------------------------------------- residency

    def set_tb_target(self, sm_id: int, kernel_idx: int, target: int) -> None:
        """Set how many TBs of a kernel the SM should host; the engine
        dispatches or context-switches TBs to converge on the target."""
        if target < 0:
            raise ValueError("TB target must be non-negative")
        self.tb_targets[sm_id][kernel_idx] = target
        sm = self.sms[sm_id]
        excess = sm.live_tb_count[kernel_idx] - target
        while excess > 0:
            victim = sm.pick_eviction_victim(kernel_idx)
            if victim is None:
                break
            self.evict_tb(sm, victim)
            excess -= 1
        if excess < 0 and self._configured:
            self._dispatch_sm(sm, self.cycle)

    def evict_tb(self, sm: SM, tb) -> int:
        """Begin a TB's partial context switch, keeping live counts exact."""
        sm.note_eviction_begin(tb)
        done = self.preemption.begin_eviction(sm, tb, self.cycle)
        if self.telemetry is not None:
            self.telemetry.note_tb_move(self.cycle, sm.sm_id, tb.kernel_idx,
                                        done - self.cycle)
        return done

    def _live_tbs(self, sm: SM, kernel_idx: int) -> int:
        return sm.live_tb_count[kernel_idx]

    def _dispatch_sm(self, sm: SM, cycle: int) -> None:
        """Deficit-first fill: the kernel furthest below its target (as a
        fraction of the target) gets the next TB, so infeasible targets
        degrade into a balanced allocation and a kernel that once hogged the
        SM cannot monopolise refills after TB turnover."""
        targets = self.tb_targets[sm.sm_id]
        live_counts = sm.live_tb_count
        resources = sm.resources
        kernels = self.kernels
        replay = self._replay_tbs
        while True:
            best_idx = -1
            best_ratio = 1.0
            for kernel_idx in range(self.num_kernels):
                target = targets[kernel_idx]
                if target <= 0:
                    continue
                live = live_counts[kernel_idx]
                if live >= target:
                    continue
                grid = kernels[kernel_idx].grid_tbs
                if (grid is not None and not replay[kernel_idx]
                        and self._next_tb_id[kernel_idx] >= grid):
                    continue  # finite grid fully handed out
                if not resources.can_admit(kernels[kernel_idx].spec):
                    continue
                ratio = live / target
                if ratio < best_ratio or best_idx < 0:
                    best_idx = kernel_idx
                    best_ratio = ratio
            if best_idx < 0:
                return
            if replay[best_idx]:
                tb_id = replay[best_idx].pop(0)
            else:
                tb_id = self._next_tb_id[best_idx]
                self._next_tb_id[best_idx] += 1
            sm.dispatch_tb(best_idx, tb_id, cycle)

    def total_tbs(self, kernel_idx: int) -> int:
        """Live (non-evicting) TBs of a kernel across the whole GPU."""
        return sum(sm.live_tb_count[kernel_idx] for sm in self.sms)

    # -------------------------------------------------------------- callbacks

    def _on_tb_finished(self, sm: SM, tb, cycle: int) -> None:
        kernel_idx = tb.kernel_idx
        stats = self.kernel_stats[kernel_idx]
        stats.completed_tbs += 1
        sm.remove_tb(tb)
        grid = self.kernels[kernel_idx].grid_tbs
        if (grid is not None and self.kernel_active[kernel_idx]
                and stats.completed_tbs >= grid):
            self._retire_kernel(kernel_idx, cycle)
        self._dispatch_sm(sm, cycle)

    def _on_quota_exhausted(self, sm: SM, kernel_idx: int, cycle: int) -> None:
        self.policy.on_quota_exhausted(self.ctx, sm.sm_id, kernel_idx, cycle)

    # ----------------------------------------------------------------- output

    def mark_measurement_start(self) -> None:
        """Exclude everything before the current cycle from result IPCs.

        Simulation warm-up (TB dispatch ramp, cold caches) is excluded from
        measurement by convention in architecture studies; at the paper's
        2M-cycle windows the ramp is negligible, but at the harness's fast
        preset it would bias every IPC by several percent.
        """
        self._measure_from_cycle = self.cycle
        for idx, stats in enumerate(self.kernel_stats):
            self._retired_baseline[idx] = stats.retired_thread_insts
            self._tbs_baseline[idx] = stats.completed_tbs
            self._memory_baseline[idx] = self.memory.kernel_stats[idx].as_dict()
        self._aggregate_baseline = self.memory.aggregate()

    def result(self) -> SimulationResult:
        """Snapshot the run into a :class:`SimulationResult`."""
        cycles = max(1, self.cycle - self._measure_from_cycle)
        kernel_results = []
        for idx, launch in enumerate(self.kernels):
            stats = self.kernel_stats[idx]
            retired = stats.retired_thread_insts - self._retired_baseline[idx]
            memory = self.memory.kernel_stats[idx].as_dict()
            baseline = self._memory_baseline[idx]
            memory = {key: value - baseline.get(key, 0)
                      for key, value in memory.items()}
            kernel_results.append(KernelResult(
                name=launch.spec.name,
                retired_thread_insts=retired,
                cycles=cycles,
                completed_tbs=stats.completed_tbs - self._tbs_baseline[idx],
                ipc=retired / cycles,
                memory=memory,
                ipc_goal=launch.ipc_goal,
                is_qos=launch.is_qos,
            ))
        issue_capacity = max(1, self.cycle) * self.config.sm.warp_schedulers
        sm_activity = [min(1.0, sm.issued_total / issue_capacity)
                       for sm in self.sms]
        aggregate = {key: value - self._aggregate_baseline.get(key, 0)
                     for key, value in self.memory.aggregate().items()}
        return SimulationResult(
            cycles=cycles,
            kernels=kernel_results,
            memory_aggregate=aggregate,
            epochs=self.epoch_index,
            evictions=self.preemption.evictions,
            eviction_stall_cycles=self.preemption.stall_cycles,
            extra={"mean_sm_activity": sum(sm_activity) / len(sm_activity),
                   "wasted_thread_insts": self.preemption.wasted_thread_insts},
        )

    def ipc_snapshot(self) -> Dict[int, int]:
        """Per-kernel retired thread instructions (for epoch IPC deltas)."""
        return {idx: stats.retired_thread_insts
                for idx, stats in enumerate(self.kernel_stats)}
