"""A cycle-level simulator of a multitasking GPU.

This package is the substrate the paper builds on (GPGPU-Sim in the
original): streaming multiprocessors with per-cycle warp issue under GTO
scheduling, a two-level cache hierarchy over bandwidth-limited memory
controllers, TB dispatch with full static-resource accounting, and a
preemption engine implementing partial context switch so that per-SM kernel
residency can be changed at run time (Simultaneous Multikernel sharing).

The QoS mechanisms of the paper plug in as a :class:`SharingPolicy`:
the policy owns per-SM quota counters (read by the Enhanced Warp Scheduler
filter inside each SM), receives epoch callbacks, and steers TB residency
targets that the engine realises through dispatch and preemption.
"""

from repro.sim.cache import Cache
from repro.sim.memory import MemorySubsystem
from repro.sim.warp import Warp, WarpState
from repro.sim.scheduler import (GTOScheduler, LRRScheduler,
                                 ScanGTOScheduler, ScanLRRScheduler,
                                 make_scheduler)
from repro.sim.tb import SMResources, ThreadBlock
from repro.sim.stats import KernelStats, SimulationResult
from repro.sim.engine import GPUSimulator, LaunchedKernel, SharingPolicy

__all__ = [
    "Cache",
    "MemorySubsystem",
    "Warp",
    "WarpState",
    "GTOScheduler",
    "LRRScheduler",
    "ScanGTOScheduler",
    "ScanLRRScheduler",
    "make_scheduler",
    "SMResources",
    "ThreadBlock",
    "KernelStats",
    "SimulationResult",
    "GPUSimulator",
    "LaunchedKernel",
    "SharingPolicy",
]
