"""A cycle-level simulator of a multitasking GPU.

This package is the substrate the paper builds on (GPGPU-Sim in the
original): streaming multiprocessors with per-cycle warp issue under GTO
scheduling, a two-level cache hierarchy over bandwidth-limited memory
controllers, TB dispatch with full static-resource accounting, and a
preemption engine implementing partial context switch so that per-SM kernel
residency can be changed at run time (Simultaneous Multikernel sharing).

The QoS mechanisms of the paper plug in as a :class:`SharingPolicy`
(defined in :mod:`repro.sim.policy`): the policy owns per-SM quota counters
(read by the Enhanced Warp Scheduler filter inside each SM), receives epoch
callbacks carrying a :class:`PolicyContext` — the typed observation and
actuation façade — and steers TB residency targets that the engine realises
through dispatch and preemption.  An optional
:class:`~repro.sim.telemetry.TelemetryRecorder` turns every epoch into a
typed :class:`~repro.sim.telemetry.EpochRecord`.
"""

from repro.sim.cache import Cache
from repro.sim.memory import MemorySubsystem
from repro.sim.warp import Warp, WarpState
from repro.sim.scheduler import (GTOScheduler, LRRScheduler,
                                 ScanGTOScheduler, ScanLRRScheduler,
                                 make_scheduler)
from repro.sim.tb import SMResources, ThreadBlock
from repro.sim.stats import KernelStats, SimulationResult
from repro.sim.policy import EpochView, PolicyContext, SharingPolicy
from repro.sim.telemetry import (EpochRecord, KernelEpochRecord, TBMove,
                                 TelemetryRecorder)
from repro.sim.engine import GPUSimulator, LaunchedKernel

__all__ = [
    "Cache",
    "MemorySubsystem",
    "Warp",
    "WarpState",
    "GTOScheduler",
    "LRRScheduler",
    "ScanGTOScheduler",
    "ScanLRRScheduler",
    "make_scheduler",
    "SMResources",
    "ThreadBlock",
    "KernelStats",
    "SimulationResult",
    "EpochView",
    "PolicyContext",
    "SharingPolicy",
    "EpochRecord",
    "KernelEpochRecord",
    "TBMove",
    "TelemetryRecorder",
    "GPUSimulator",
    "LaunchedKernel",
]
