"""One streaming multiprocessor: warp issue, quotas, TB residency.

The per-cycle issue path implements the Enhanced Warp Scheduler of
Section 3.3: each of the SM's warp schedulers runs its unmodified policy
(GTO by default) over the warps whose kernel still has quota
(``quota_ok``); issuing an instruction retires ``active_lanes`` thread
instructions and decrements the kernel's local quota counter.  When a
counter crosses zero the kernel is throttled on this SM and the active
policy is notified (this is where Naïve's non-QoS refill and Elastic's
early-epoch checks hang).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.config import GPUConfig
from repro.sim.kernel_runtime import KernelRuntime
from repro.sim.memory import MemorySubsystem
from repro.sim.scheduler import make_scheduler
from repro.sim.stats import KernelStats
from repro.sim.tb import SMResources, ThreadBlock
from repro.sim.warp import Warp, WarpState


class SM:
    """A streaming multiprocessor hosting TBs from one or more kernels."""

    def __init__(self, sm_id: int, config: GPUConfig,
                 runtimes: List[KernelRuntime],
                 memory: MemorySubsystem,
                 kernel_stats: List[KernelStats],
                 on_quota_exhausted: Callable,
                 on_tb_finished: Callable,
                 wake_listener: Optional[Callable] = None):
        self.sm_id = sm_id
        self.config = config
        self.runtimes = runtimes
        self.memory = memory
        self.kernel_stats = kernel_stats
        self.resources = SMResources(config.sm)
        self.schedulers = [make_scheduler(config.scheduler_policy,
                                          self._sleep_changed,
                                          config.engine_core)
                           for _ in range(config.sm.warp_schedulers)]
        self.tbs: List[ThreadBlock] = []
        num_kernels = len(runtimes)
        self.tb_count = [0] * num_kernels
        #: Non-evicting resident TBs per kernel, maintained incrementally at
        #: dispatch / eviction-begin / removal so residency queries are O(1)
        #: instead of a scan over ``tbs``.
        self.live_tb_count = [0] * num_kernels
        # Cached min over scheduler ``sleep_until``s for the engine's per-SM
        # sleep skipping and idle-skip; invalidated by the schedulers'
        # notify callback.  ``wake_listener`` (the engine) is told about
        # every change so it can keep a GPU-level minimum of the hints.
        self._wake_min = 0
        self._wake_dirty = True
        self._wake_listener = wake_listener
        # Enhanced Warp Scheduler state.  With quotas disabled the
        # all-True eligibility list makes this SM behave like stock hardware.
        self.quota_enabled = False
        self.quota_ok = [True] * num_kernels
        self.quota_counters = [0.0] * num_kernels
        # Idle-warp sampling accumulators (Section 3.6), read by policies.
        self.idle_sum = [0] * num_kernels
        self.idle_samples = 0
        # Per-epoch retired-instruction counters local to this SM.
        self.retired_local = [0] * num_kernels
        self.issued_total = 0
        self._on_quota_exhausted = on_quota_exhausted
        self._on_tb_finished = on_tb_finished
        lat = config.memory.latency
        self._alu_lat = lat.alu
        self._sfu_lat = lat.sfu
        self._lds_lat = lat.shared_mem

    # ------------------------------------------------------------------ issue

    def step(self, cycle: int, sample: bool = False) -> int:
        """Advance this SM by one cycle; returns instructions issued."""
        issued = 0
        quota_ok = self.quota_ok
        for scheduler in self.schedulers:
            warp = scheduler.select(cycle, quota_ok)
            if warp is not None:
                self._issue(warp, cycle)
                issued += 1
        self.issued_total += issued
        if sample:
            self.sample_idle(cycle)
        return issued

    def _issue(self, warp: Warp, cycle: int) -> None:
        runtime = self.runtimes[warp.kernel_idx]
        pattern = runtime.program.pattern
        inst = pattern[warp.pc % len(pattern)]
        opcode = inst.opcode
        lanes = inst.active_lanes
        barrier_released = False

        if opcode == 0:  # ALU
            warp.ready_at = cycle + (self._alu_lat if inst.dependent else 1)
        elif opcode == 2:  # LDG
            lines = warp.global_lines(runtime)
            warp.ready_at = self.memory.warp_access(
                self.sm_id, warp.kernel_idx, lines, False, cycle)
        elif opcode == 4:  # LDS
            warp.ready_at = cycle + (self._lds_lat if inst.dependent else 1)
        elif opcode == 3:  # STG
            lines = warp.global_lines(runtime)
            self.memory.warp_access(self.sm_id, warp.kernel_idx, lines, True, cycle)
            warp.ready_at = cycle + 1
        elif opcode == 1:  # SFU
            warp.ready_at = cycle + (self._sfu_lat if inst.dependent else 4)
        else:  # BAR
            barrier_released = warp.tb.arrive_barrier(warp, cycle)

        kernel_idx = warp.kernel_idx
        stats = self.kernel_stats[kernel_idx]
        stats.retired_thread_insts += lanes
        stats.issued_warp_insts += 1
        self.retired_local[kernel_idx] += lanes

        warp.pc += 1
        if warp.pc >= runtime.program_length and warp.state != WarpState.AT_BARRIER:
            self._retire_warp(warp, cycle)
        if barrier_released:
            # Peers released by this barrier advanced their pc when they
            # issued the BAR; if that was their last instruction they retire
            # now instead of re-entering the scheduler.
            self._wake_schedulers()
            length = runtime.program_length
            for peer in warp.tb.warps:
                if peer.state == WarpState.RUNNING and peer.pc >= length:
                    self._retire_warp(peer, cycle)

        if self.quota_enabled:
            remaining = self.quota_counters[kernel_idx] - lanes
            self.quota_counters[kernel_idx] = remaining
            if remaining <= 0 and self.quota_ok[kernel_idx]:
                self.quota_ok[kernel_idx] = False
                self._on_quota_exhausted(self, kernel_idx, cycle)

    def _retire_warp(self, warp: Warp, cycle: int) -> None:
        warp.state = WarpState.DONE
        tb = warp.tb
        tb.done_warps += 1
        if tb.finished and not tb.evicting:
            self._on_tb_finished(self, tb, cycle)

    def _wake_schedulers(self) -> None:
        for scheduler in self.schedulers:
            scheduler.sleep_until = 0
        self._wake_min = 0
        self._wake_dirty = False
        if self._wake_listener is not None:
            self._wake_listener()

    wake_all = _wake_schedulers

    def _sleep_changed(self) -> None:
        self._wake_dirty = True
        if self._wake_listener is not None:
            self._wake_listener()

    def wake_hint(self) -> int:
        """Earliest cycle at which any of this SM's schedulers may issue."""
        if self._wake_dirty:
            self._wake_min = min(s.sleep_until for s in self.schedulers)
            self._wake_dirty = False
        return self._wake_min

    # ------------------------------------------------------- quota interface

    def set_quota(self, kernel_idx: int, amount: float) -> None:
        """Load a kernel's local quota counter and re-enable it if positive."""
        self.quota_counters[kernel_idx] = amount
        ok = amount > 0
        if ok != self.quota_ok[kernel_idx]:
            self.quota_ok[kernel_idx] = ok
            if ok:
                self._wake_schedulers()

    def add_quota(self, kernel_idx: int, amount: float) -> None:
        """Top up a kernel's counter (Naïve's mid-epoch non-QoS refill)."""
        self.set_quota(kernel_idx, self.quota_counters[kernel_idx] + amount)

    def all_exhausted(self, kernel_indices) -> bool:
        """True when every listed kernel's local counter is <= 0."""
        counters = self.quota_counters
        return all(counters[k] <= 0 for k in kernel_indices)

    # ------------------------------------------------------------ TB hosting

    def add_kernel(self) -> None:
        """Extend every per-kernel parallel list for a mid-run launch
        (``GPUSimulator.launch_at``); the newcomer starts with no TBs, no
        quota and clean sampling accumulators."""
        self.tb_count.append(0)
        self.live_tb_count.append(0)
        self.quota_ok.append(True)
        self.quota_counters.append(0.0)
        self.idle_sum.append(0)
        self.retired_local.append(0)

    def dispatch_tb(self, kernel_idx: int, tb_id: int, cycle: int) -> ThreadBlock:
        """Admit one TB of the kernel and spread its warps over schedulers."""
        runtime = self.runtimes[kernel_idx]
        spec = runtime.spec
        self.resources.admit(spec)
        tb = ThreadBlock(tb_id, kernel_idx, spec, cycle)
        for warp_id in range(runtime.warps_per_tb):
            warp = Warp(kernel_idx, tb, warp_id,
                        seed=runtime.warp_seed(tb_id, warp_id),
                        start_cursor=runtime.start_cursor(tb_id, warp_id))
            warp.ready_at = cycle + 1
            tb.warps.append(warp)
            scheduler = min(self.schedulers, key=lambda s: len(s.warps))
            scheduler.add_warp(warp)
        self.tbs.append(tb)
        self.tb_count[kernel_idx] += 1
        self.live_tb_count[kernel_idx] += 1
        return tb

    def pick_eviction_victim(self, kernel_idx: int) -> Optional[ThreadBlock]:
        """Choose the TB to context-switch out: the most recently dispatched
        live TB of the kernel (cheapest to refill, least sunk work)."""
        for tb in reversed(self.tbs):
            if tb.kernel_idx == kernel_idx and not tb.evicting and not tb.finished:
                return tb
        return None

    def note_eviction_begin(self, tb: ThreadBlock) -> None:
        """Account a TB leaving the live set as its eviction starts (the TB
        stays resident, holding resources, until the context save drains)."""
        self.live_tb_count[tb.kernel_idx] -= 1

    def remove_tb(self, tb: ThreadBlock) -> None:
        """Release a finished or fully saved TB's resources and warps."""
        for warp in tb.warps:
            # The back-reference set at add_warp replaces the old
            # O(schedulers x warps) membership probe per warp.
            scheduler = warp.sched
            if scheduler is not None:
                scheduler.remove_warp(warp)
        self.tbs.remove(tb)
        self.tb_count[tb.kernel_idx] -= 1
        if not tb.evicting:
            self.live_tb_count[tb.kernel_idx] -= 1
        self.resources.release(tb.spec)

    # -------------------------------------------------------------- sampling

    def sample_idle(self, cycle: int) -> None:
        """Count ready-but-not-issued warps per kernel (idle warps, Sec 3.6).

        Runs after the issue loop, so any warp still ready this cycle could
        not be scheduled — the paper's definition of an idle warp.  Warps of
        a quota-throttled kernel count too: they hold static resources
        without contributing progress, which is exactly the excess-TLP
        signal the TB re-allocator needs (a satisfied QoS kernel's parked
        warps are what the non-QoS side can reclaim).

        The engine also calls this directly for SMs it sleep-skips on a
        sample cycle, so every SM observes every grid point.  Counting goes
        through the schedulers' readiness structures (``sample_ready``):
        O(ready warps) on the event core instead of a scan over every warp.
        """
        idle = self.idle_sum
        for scheduler in self.schedulers:
            scheduler.sample_ready(cycle, idle)
        self.idle_samples += 1

    def reset_epoch_sampling(self) -> None:
        for kernel_idx in range(len(self.idle_sum)):
            self.idle_sum[kernel_idx] = 0
            self.retired_local[kernel_idx] = 0
        self.idle_samples = 0

    def mean_idle_warps(self, kernel_idx: int) -> float:
        if self.idle_samples == 0:
            return 0.0
        return self.idle_sum[kernel_idx] / self.idle_samples
