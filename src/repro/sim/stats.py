"""Simulation statistics: per-kernel progress counters and run results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class KernelStats:
    """Per-kernel progress counters maintained by the issue path."""

    __slots__ = ("retired_thread_insts", "issued_warp_insts", "completed_tbs",
                 "idle_warp_samples", "idle_warp_sum")

    def __init__(self) -> None:
        self.retired_thread_insts = 0
        self.issued_warp_insts = 0
        self.completed_tbs = 0
        self.idle_warp_samples = 0
        self.idle_warp_sum = 0

    def reset_idle_sampling(self) -> None:
        self.idle_warp_samples = 0
        self.idle_warp_sum = 0

    @property
    def mean_idle_warps(self) -> float:
        if self.idle_warp_samples == 0:
            return 0.0
        return self.idle_warp_sum / self.idle_warp_samples


@dataclass
class KernelResult:
    """Outcome of one kernel in one simulation run."""

    name: str
    retired_thread_insts: int
    cycles: int
    completed_tbs: int
    ipc: float
    memory: Dict[str, int]
    ipc_goal: Optional[float] = None
    is_qos: bool = False

    @property
    def reached_goal(self) -> Optional[bool]:
        """Whether the QoS goal was met (None for non-QoS kernels).

        A small numeric slack absorbs quota-granularity rounding, matching
        the paper's treatment of goals as satisfied when achieved IPC
        reaches the target.
        """
        if not self.is_qos or self.ipc_goal is None:
            return None
        return self.ipc >= self.ipc_goal * 0.999


@dataclass
class SimulationResult:
    """Everything the harness needs from one run."""

    cycles: int
    kernels: List[KernelResult]
    memory_aggregate: Dict[str, int]
    epochs: int
    evictions: int
    eviction_stall_cycles: int
    energy_joules: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def kernel(self, name: str) -> KernelResult:
        for result in self.kernels:
            if result.name == name:
                return result
        raise KeyError(name)

    @property
    def total_ipc(self) -> float:
        return sum(k.ipc for k in self.kernels)
