"""A set-associative LRU cache model.

Operates on *line numbers* (byte address // line size); the memory subsystem
does the division once per request.  Allocate-on-miss for both reads and
writes, LRU replacement.  Sets are small Python lists kept in LRU order
(MRU at the tail) — for associativities up to 16 a list scan is faster than
any fancier structure in CPython, and this is the hottest data structure in
the simulator.
"""

from __future__ import annotations


class Cache:
    """One cache (an L1, or one memory controller's L2 slice).

    Supports write-back state: :meth:`access_rw` marks written lines dirty
    and reports the evicted line when a dirty victim must be written back.
    The plain :meth:`access` treats the touch as a clean read.
    """

    __slots__ = ("num_sets", "assoc", "line_size", "sets", "hits", "misses",
                 "dirty", "writebacks")

    def __init__(self, size_bytes: int, assoc: int, line_size: int):
        if size_bytes <= 0 or assoc <= 0 or line_size <= 0:
            raise ValueError("cache geometry must be positive")
        num_sets = size_bytes // (assoc * line_size)
        if num_sets == 0:
            raise ValueError("cache smaller than one set")
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_size = line_size
        self.sets = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.dirty = set()
        self.writebacks = 0

    def access(self, line: int) -> bool:
        """Touch a line with a read; returns True on hit (allocates on miss)."""
        hit, _writeback = self.access_rw(line, is_write=False)
        return hit

    def access_rw(self, line: int, is_write: bool):
        """Touch a line; returns (hit, evicted_dirty_line_or_None).

        Writes mark the line dirty; when a dirty line is evicted its id is
        returned so the caller can charge the write-back traffic.
        """
        line_set = self.sets[line % self.num_sets]
        writeback = None
        if line in line_set:
            if line_set[-1] != line:
                line_set.remove(line)
                line_set.append(line)
            self.hits += 1
            if is_write:
                self.dirty.add(line)
            return True, None
        self.misses += 1
        line_set.append(line)
        if is_write:
            self.dirty.add(line)
        if len(line_set) > self.assoc:
            victim = line_set[0]
            del line_set[0]
            if victim in self.dirty:
                self.dirty.discard(victim)
                self.writebacks += 1
                writeback = victim
        return False, writeback

    def probe(self, line: int) -> bool:
        """Check residency without updating LRU state or counters."""
        return line in self.sets[line % self.num_sets]

    def flush(self) -> None:
        """Drop all contents (used when an SM is repartitioned)."""
        for line_set in self.sets:
            del line_set[:]
        self.dirty.clear()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"Cache(sets={self.num_sets}, assoc={self.assoc}, "
                f"hit_rate={self.hit_rate:.3f})")
