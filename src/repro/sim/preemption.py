"""Partial context switch: TB-granularity preemption (Section 2.3, [41, 42]).

Evicting a TB freezes its warps immediately (no more issue slots), then
charges the context-save cost — a drain window plus a store phase sized by
the TB's register + shared-memory footprint (see
:class:`repro.config.PreemptionConfig`).  Only when the save completes are
the TB's static resources released for the incoming kernel, which is why
frequent repartitioning is expensive and why the paper's static-resource
manager "swaps only if there are no pending preemption requests".
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.config import PreemptionConfig
from repro.sim.tb import ThreadBlock


class PreemptionEngine:
    """Tracks in-flight TB evictions as a time-ordered event heap."""

    def __init__(self, config: PreemptionConfig):
        self.config = config
        self._heap: List[Tuple[int, int, object, ThreadBlock]] = []
        self._sequence = 0
        self.evictions = 0
        self.stall_cycles = 0
        self.wasted_thread_insts = 0

    def begin_eviction(self, sm, tb: ThreadBlock, cycle: int) -> int:
        """Freeze a TB and schedule its resource release; returns done cycle.

        In context-reset mode the eviction is free but the TB's partial
        progress is charged as wasted work (a relaunched TB must redo it).
        """
        tb.freeze()
        cost = self.config.eviction_cycles(tb.spec.context_bytes)
        if self.config.mode == "reset" and self.config.enabled:
            self.wasted_thread_insts += _partial_progress(tb)
        done = cycle + cost
        self._sequence += 1
        heapq.heappush(self._heap, (done, self._sequence, sm, tb))
        self.evictions += 1
        self.stall_cycles += cost
        return done

    @property
    def has_pending(self) -> bool:
        return bool(self._heap)

    @property
    def pending_count(self) -> int:
        return len(self._heap)

    @property
    def next_completion(self) -> Optional[int]:
        return self._heap[0][0] if self._heap else None

    def pop_completed(self, cycle: int):
        """Yield (sm, tb) for every eviction finished by ``cycle``."""
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            _done, _seq, sm, tb = heapq.heappop(heap)
            yield sm, tb


def _partial_progress(tb: ThreadBlock) -> int:
    """Estimate the thread instructions a dropped TB had retired.

    Warp program counters times the program's mean active lanes: exact up
    to divergence placement, with no per-issue accounting cost.
    """
    total_pc = sum(warp.pc for warp in tb.warps)
    if total_pc == 0:
        return 0
    # Mean lanes per slot comes from the spec's divergence-aware pattern;
    # approximate from warps' shared program via the TB's spec.
    return int(total_pc * 32 * (1.0 - 0.25 * tb.spec.divergence))
