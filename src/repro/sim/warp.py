"""Warp state machine.

A warp is the schedulable unit: it owns a linear instruction counter into its
kernel's :class:`~repro.kernels.WarpProgram`, a readiness cycle, and the
per-warp address-generation state (a 32-bit LCG plus a streaming cursor).
Everything is ``__slots__`` plain data — warps are touched every cycle and
this is the hottest object in the simulator.
"""

from __future__ import annotations


class WarpState:
    """Warp lifecycle states (plain ints for speed)."""

    RUNNING = 0      # schedulable once ready_at <= cycle
    AT_BARRIER = 1   # parked until all warps of the TB arrive
    FROZEN = 2       # TB is being context-switched out
    DONE = 3         # program finished

    NAMES = {0: "RUNNING", 1: "AT_BARRIER", 2: "FROZEN", 3: "DONE"}


_LCG_MUL = 1664525
_LCG_ADD = 1013904223
_LCG_MASK = 0xFFFFFFFF


class Warp:
    """One warp of a resident thread block."""

    __slots__ = (
        "kernel_idx", "tb", "warp_id_in_tb", "pc", "ready_at", "state",
        "lcg", "cursor", "last_line",
        # Scheduler bookkeeping: ``sched`` is a back-reference to the owning
        # scheduler (set at add_warp, cleared at remove_warp) so TB removal
        # and out-of-band wake events are O(1) instead of probing every
        # scheduler.  The remaining fields are the event-driven scheduler's
        # queue state (see repro.sim.scheduler): ``age`` is the per-scheduler
        # insertion number (GTO "oldest" order), ``pos`` the current index in
        # the scheduler's warp list (LRR rotation order), ``in_ready`` /
        # ``pending_key`` track membership in the ready list / pending heap.
        "sched", "age", "pos", "in_ready", "pending_key",
    )

    def __init__(self, kernel_idx: int, tb, warp_id_in_tb: int, seed: int,
                 start_cursor: int):
        self.kernel_idx = kernel_idx
        self.tb = tb
        self.warp_id_in_tb = warp_id_in_tb
        self.pc = 0
        self.ready_at = 0
        self.state = WarpState.RUNNING
        self.lcg = seed & _LCG_MASK or 1
        self.cursor = start_cursor
        self.last_line = start_cursor
        self.sched = None
        self.age = -1
        self.pos = -1
        self.in_ready = False
        self.pending_key = None

    def next_random(self) -> int:
        """Advance the per-warp LCG; returns a 32-bit pseudo-random int."""
        value = (self.lcg * _LCG_MUL + _LCG_ADD) & _LCG_MASK
        self.lcg = value
        return value

    def global_lines(self, runtime) -> tuple:
        """Generate the line requests for one global memory instruction.

        ``runtime`` is the kernel's :class:`KernelRuntime` carrying the
        precomputed thresholds.  Three behaviours, drawn from the warp LCG:
        reuse of the last touched line (hits in L1), a coalesced streaming
        advance (single line), or an uncoalesced fan-out of several
        pseudo-random lines within the kernel footprint.
        """
        r = self.next_random()
        if r < runtime.reuse_threshold:
            return (self.last_line,)
        if r < runtime.coalesce_threshold:
            cursor = self.cursor + 1
            if cursor >= runtime.footprint_lines:
                cursor = 0
            self.cursor = cursor
            line = runtime.base_line + cursor
            self.last_line = line
            return (line,)
        footprint = runtime.footprint_lines
        base = runtime.base_line
        lines = []
        for _ in range(runtime.uncoalesced_degree):
            lines.append(base + self.next_random() % footprint)
        self.last_line = lines[-1]
        return tuple(lines)

    def __repr__(self) -> str:
        return (f"Warp(k={self.kernel_idx}, tb={self.tb.tb_id}, "
                f"w={self.warp_id_in_tb}, pc={self.pc}, "
                f"state={WarpState.NAMES[self.state]})")
