"""The quota allocation schemes of Sections 3.4 and 4.5.

A scheme answers two questions for the QoS manager:

1. *At an epoch boundary*, what does a kernel's per-SM counter become, given
   its residual value and its new quota share?  (``refresh``)
2. *Mid-epoch*, what happens when a counter crosses zero?
   (``wants_elastic_restart`` / ``initial_nonqos_blocked``)

Worked example from Figure 4 (quota 100 for QoS kernel K0, 50 for non-QoS
K1):

* **Naïve** discards residuals: counters reset to the fresh quota every
  epoch.  Mid-epoch, once every QoS counter is exhausted, non-QoS counters
  are topped up by their quota so the SM keeps busy (4a: C_K1 = -2 -> 48).
* **History** is Naïve with quotas scaled by alpha = max(goal/history, 1).
* **Elastic** starts the next epoch immediately when *all* counters are
  exhausted; residuals are added to the fresh quotas (4b: C_K0 = -3 -> 97).
* **Rollover** keeps a QoS kernel's unused quota (4c: C_K0 = 5 -> 105)
  while non-QoS residual surplus is discarded (C_K1 = 20 -> 50); debt is
  carried for both (C_K1 = -3 -> 47).
* **Rollover-Time** (Section 4.5) uses Rollover's accounting but blocks
  non-QoS kernels until the QoS kernels exhaust their quotas, i.e.
  CPU-style prioritised time multiplexing inside each epoch.

A scheme deliberately does *not* decide how large the fresh quota is:
that is the control law — by default the history-based alpha these
examples assume, but pluggable via :mod:`repro.controllers` (PID/MPC),
which scales ``ipc_goal * epoch_length`` independently of the boundary
accounting here.  Any controller composes with any scheme.
"""

from __future__ import annotations


class QuotaScheme:
    """Base class: common defaults shared by all schemes.

    Two entry points define a scheme's boundary behaviour:

    ``carry(residual, is_qos)``
        How much of a counter's residual survives the boundary.  The QoS
        manager sums carries across all SMs and adds the total to the
        kernel's fresh quota *before* distribution, so unused quota
        stranded on one SM is redistributed to SMs that can consume it
        ("the unused quota of QoS kernels from the last epoch are added to
        the quota of this epoch", Section 3.4.4 — Quota_k is a kernel-wide
        quantity).
    ``blocks_nonqos_at_boundary``
        Whether non-QoS counters start each epoch empty (Rollover-Time's
        CPU-style prioritisation).

    ``refresh`` is the single-SM composition of the two (the arithmetic of
    the Figure 4 worked examples).
    """

    name = "base"
    #: scale quotas by the history-based alpha of Section 3.4.2
    use_history = True
    #: start a new epoch the moment every resident kernel is exhausted
    elastic = False
    #: non-QoS kernels start each epoch throttled (Rollover-Time)
    initial_nonqos_blocked = False

    def carry(self, residual: float, is_qos: bool) -> float:
        """Portion of a counter's boundary residual that is kept."""
        raise NotImplementedError

    @property
    def blocks_nonqos_at_boundary(self) -> bool:
        return self.initial_nonqos_blocked

    def refresh(self, residual: float, share: float, is_qos: bool) -> float:
        """New counter value at an epoch boundary (single-SM view).

        ``residual`` is the counter's value at the boundary (positive =
        unused quota, negative = overrun due to warp-granularity
        decrements); ``share`` is this SM's slice of the kernel's fresh
        quota.
        """
        if not is_qos and self.blocks_nonqos_at_boundary:
            return 0.0
        return share + self.carry(residual, is_qos)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NaiveScheme(QuotaScheme):
    """Section 3.4.1: fixed quota, residuals discarded, no history scaling."""

    name = "naive"
    use_history = False

    def carry(self, residual: float, is_qos: bool) -> float:
        return 0.0


class HistoryScheme(NaiveScheme):
    """Section 3.4.2: Naïve allocation with history-based quota adjustment."""

    name = "history"
    use_history = True


class ElasticScheme(QuotaScheme):
    """Section 3.4.3: variable-length epochs.

    When every counter on the GPU is exhausted a new epoch begins at once
    and residuals are *added* to the fresh quotas, so over-consumption in
    one epoch is charged against the next.
    """

    name = "elastic"
    elastic = True

    def carry(self, residual: float, is_qos: bool) -> float:
        return residual


class RolloverScheme(QuotaScheme):
    """Section 3.4.4: carry QoS kernels' unused quota into the next epoch.

    Non-QoS kernels never bank surplus (it would let them overrun QoS
    kernels later), but debt is carried for everyone so the decrement
    granularity cannot be gamed.
    """

    name = "rollover"

    def carry(self, residual: float, is_qos: bool) -> float:
        if is_qos:
            return residual
        return min(residual, 0.0)


class RolloverTimeScheme(RolloverScheme):
    """Section 4.5: Rollover accounting with CPU-style prioritisation.

    Non-QoS kernels begin every epoch with an empty counter and only start
    once all QoS kernels on their SM have exhausted theirs — the
    "conventional QoS with prioritization as in CPUs" strawman.
    """

    name = "rollover-time"
    initial_nonqos_blocked = True


_SCHEMES = {
    scheme.name: scheme
    for scheme in (NaiveScheme, HistoryScheme, ElasticScheme,
                   RolloverScheme, RolloverTimeScheme)
}

SCHEME_NAMES = tuple(sorted(_SCHEMES))


def scheme_by_name(name: str) -> QuotaScheme:
    """Instantiate a quota scheme from its paper name."""
    try:
        return _SCHEMES[name]()
    except KeyError:
        raise ValueError(
            f"unknown quota scheme {name!r}; choose from {SCHEME_NAMES}") from None
