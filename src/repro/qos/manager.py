"""The QoS Manager — orchestrates quotas, goals and TB adjustment.

This is the architecture of Figure 3: the enhanced TB scheduler performs
static resource management (initial symmetric allocation + runtime TB
adjustment via the preemption engine) while the QoS manager performs dynamic
resource management (epoch quotas distributed to each SM's Enhanced Warp
Scheduler, proportionally to the TBs it hosts).  The quota *scheme* decides
how counters refresh at epoch boundaries; the manager decides how large the
quotas are, using the history-based alpha (Section 3.4.2) and the non-QoS
goal search (Section 3.5).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.qos.nonqos import INITIAL_NONQOS_IPC, nonqos_ipc_goal
from repro.qos.quota import QuotaScheme, RolloverScheme, scheme_by_name
from repro.qos.static_alloc import StaticAllocator, symmetric_targets
from repro.sim.engine import GPUSimulator, SharingPolicy

#: Upper bound on the history-based scale factor.  Section 3.4.3 observes
#: that "more aggressive alpha adjustment would benefit QoS kernels but not
#: the non-QoS kernels so that the total throughput is lowered"; the cap
#: keeps a transiently starved kernel from requesting an unbounded quota.
ALPHA_CAP = 8.0


class QoSPolicy(SharingPolicy):
    """Fine-grained QoS management over SMK sharing (the paper's design)."""

    uses_quotas = True

    def __init__(self, scheme: Union[QuotaScheme, str] = None,
                 static_adjustment: bool = True,
                 alpha_cap: float = ALPHA_CAP):
        if scheme is None:
            scheme = RolloverScheme()
        elif isinstance(scheme, str):
            scheme = scheme_by_name(scheme)
        self.scheme = scheme
        self.name = f"qos-{scheme.name}"
        self.static_adjustment = static_adjustment
        self.alpha_cap = alpha_cap
        # Populated at setup().
        self.qos_indices: List[int] = []
        self.nonqos_indices: List[int] = []
        self.goals: Dict[int, float] = {}
        self.alphas: Dict[int, float] = {}
        self.nonqos_goals: Dict[int, float] = {}
        self.ipc_history: Dict[int, float] = {}
        self.epoch_ipc: Dict[int, float] = {}
        # Exponential moving average of per-epoch IPC.  The cumulative
        # ipc_history drives alpha (the paper's formula); TB-allocation
        # decisions use this faster-tracking signal so a long warm-up
        # transient cannot keep granting TBs to a kernel that is already
        # performing above goal (matters at short simulation windows).
        self.recent_ipc: Dict[int, float] = {}
        self.allocator: StaticAllocator = None
        self._last_retired: Dict[int, int] = {}
        self._last_epoch_cycle = 0
        self._measured = False
        self._nonqos_share: List[Dict[int, float]] = []
        self._design_residency: List[set] = []

    # -------------------------------------------------------------- setup

    def setup(self, engine: GPUSimulator) -> None:
        for idx, launch in enumerate(engine.kernels):
            if launch.is_qos:
                self.qos_indices.append(idx)
                self.goals[idx] = launch.ipc_goal
                self.alphas[idx] = 1.0
            else:
                self.nonqos_indices.append(idx)
                self.nonqos_goals[idx] = INITIAL_NONQOS_IPC
            self.ipc_history[idx] = 0.0
            self.epoch_ipc[idx] = INITIAL_NONQOS_IPC
            self.recent_ipc[idx] = 0.0
            self._last_retired[idx] = 0
        self.allocator = StaticAllocator(engine.config)
        self._nonqos_share = [dict() for _ in range(engine.config.num_sms)]

        specs = [launch.spec for launch in engine.kernels]
        targets = symmetric_targets(engine.config, self.qos_indices,
                                    self.nonqos_indices, specs)
        self._design_residency = [set(sm_targets) for sm_targets in targets]
        for sm_id, sm_targets in enumerate(targets):
            for kernel_idx in range(engine.num_kernels):
                engine.set_tb_target(sm_id, kernel_idx,
                                     sm_targets.get(kernel_idx, 0))

    # -------------------------------------------------------------- epochs

    def on_epoch_start(self, engine: GPUSimulator, cycle: int,
                       epoch_index: int) -> None:
        if epoch_index == 0:
            self._refresh_quotas(engine, first=True)
            return
        self._measure(engine, cycle)
        self._update_alphas()
        self._update_nonqos_goals()
        if self.static_adjustment:
            # TB allocation chases the alpha-adjusted catch-up target: a
            # kernel whose cumulative IPC still trails its goal must run
            # *above* goal for the remainder, so judging TLP needs against
            # the raw goal would stop growing it too early.
            alloc_goals = {idx: self.alphas[idx] * self.goals[idx]
                           for idx in self.qos_indices}
            self.allocator.adjust(engine, self.qos_indices,
                                  self.nonqos_indices, self.recent_ipc,
                                  alloc_goals, self._design_residency)
        self._refresh_quotas(engine, first=False)
        self._last_epoch_cycle = cycle

    def _measure(self, engine: GPUSimulator, cycle: int) -> None:
        """Per-epoch and cumulative IPC for every kernel."""
        epoch_cycles = max(1, cycle - self._last_epoch_cycle)
        for idx, stats in enumerate(engine.kernel_stats):
            retired = stats.retired_thread_insts
            epoch_ipc = (retired - self._last_retired[idx]) / epoch_cycles
            self.epoch_ipc[idx] = epoch_ipc
            self.ipc_history[idx] = retired / max(1, cycle)
            if self._measured:
                self.recent_ipc[idx] = (0.5 * self.recent_ipc[idx]
                                        + 0.5 * epoch_ipc)
            else:
                self.recent_ipc[idx] = epoch_ipc
            self._last_retired[idx] = retired
        self._measured = True

    def _update_alphas(self) -> None:
        """alpha_k = max(IPC_goal / IPC_history, 1), capped (Section 3.4.2)."""
        if not self.scheme.use_history:
            for idx in self.qos_indices:
                self.alphas[idx] = 1.0
            return
        for idx in self.qos_indices:
            history = self.ipc_history[idx]
            if history <= 0:
                self.alphas[idx] = self.alpha_cap
            else:
                self.alphas[idx] = min(self.alpha_cap,
                                       max(1.0, self.goals[idx] / history))

    def _update_nonqos_goals(self) -> None:
        """The Section 3.5 artificial-goal search for each non-QoS kernel."""
        qos_epoch = {idx: self.epoch_ipc[idx] for idx in self.qos_indices}
        for idx in self.nonqos_indices:
            self.nonqos_goals[idx] = nonqos_ipc_goal(
                self.epoch_ipc[idx], qos_epoch, self.goals, self.alphas)

    # -------------------------------------------------------------- quotas

    def _kernel_quota(self, engine: GPUSimulator, kernel_idx: int) -> float:
        """Whole-GPU quota for the next epoch, in thread instructions."""
        epoch_length = engine.config.epoch_length
        if kernel_idx in self.goals:
            return self.alphas[kernel_idx] * self.goals[kernel_idx] * epoch_length
        return self.nonqos_goals[kernel_idx] * epoch_length

    def _refresh_quotas(self, engine: GPUSimulator, first: bool) -> None:
        """Distribute quotas into per-SM counters, TB-proportionally.

        The scheme's carried residual is summed over all SMs and folded
        into the kernel-wide quota before distribution (Section 3.4.4
        treats Quota_k as a whole-kernel quantity): unused quota stranded
        on an SM whose share exceeded its local capacity is thereby
        redistributed to SMs that can actually consume it next epoch.
        """
        num_sms = engine.config.num_sms
        scheme = self.scheme
        for kernel_idx in range(engine.num_kernels):
            quota = self._kernel_quota(engine, kernel_idx)
            is_qos = kernel_idx in self.goals
            if not first:
                quota += sum(
                    scheme.carry(sm.quota_counters[kernel_idx], is_qos)
                    for sm in engine.sms)
            total_tbs = engine.total_tbs(kernel_idx)
            blocked = (not is_qos) and scheme.blocks_nonqos_at_boundary
            for sm in engine.sms:
                if total_tbs > 0:
                    share = quota * sm.tb_count[kernel_idx] / total_tbs
                else:
                    share = quota / num_sms
                if not is_qos:
                    self._nonqos_share[sm.sm_id][kernel_idx] = max(share, 0.0)
                sm.set_quota(kernel_idx, 0.0 if blocked else share)
        for sm in engine.sms:
            sm.wake_all()

    # ----------------------------------------------------- exhaustion hook

    def on_quota_exhausted(self, engine: GPUSimulator, sm, kernel_idx: int,
                           cycle: int) -> None:
        if self.scheme.elastic:
            if self._all_resident_exhausted(engine):
                # Start the next epoch at once (Section 3.4.3); the engine
                # processes the boundary at the top of the next cycle.
                engine.next_epoch_at = cycle
            return
        # Naïve-family mid-epoch refill: once every QoS kernel on this SM is
        # out of quota, top up the drained non-QoS kernels so the SM's spare
        # cycles are not wasted (Section 3.4.1).  QoS kernels never receive
        # more quota mid-epoch — their goal for this epoch has been met.
        if not sm.all_exhausted(self._resident_qos(sm)):
            return
        shares = self._nonqos_share[sm.sm_id]
        for nonqos_idx in self.nonqos_indices:
            if sm.tb_count[nonqos_idx] > 0 and sm.quota_counters[nonqos_idx] <= 0:
                sm.add_quota(nonqos_idx, max(shares.get(nonqos_idx, 0.0), 1.0))

    def _resident_qos(self, sm) -> List[int]:
        return [idx for idx in self.qos_indices if sm.tb_count[idx] > 0]

    def _all_resident_exhausted(self, engine: GPUSimulator) -> bool:
        for sm in engine.sms:
            counters = sm.quota_counters
            for kernel_idx in range(engine.num_kernels):
                if sm.tb_count[kernel_idx] > 0 and counters[kernel_idx] > 0:
                    return False
        return True
