"""The QoS Manager — orchestrates quotas, goals and TB adjustment.

This is the architecture of Figure 3: the enhanced TB scheduler performs
static resource management (initial symmetric allocation + runtime TB
adjustment via the preemption engine) while the QoS manager performs dynamic
resource management (epoch quotas distributed to each SM's Enhanced Warp
Scheduler, proportionally to the TBs it hosts).  The quota *scheme* decides
how counters refresh at epoch boundaries; the manager decides how large the
quotas are, using the history-based alpha (Section 3.4.2) and the non-QoS
goal search (Section 3.5).

The manager is written purely against :class:`repro.sim.policy.PolicyContext`
— measurement comes from the context's per-epoch :class:`EpochView`, and all
machine effects go through the context's actuation surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.controllers.base import QuotaController, SchemeController
#: Upper bound on the history-based scale factor.  Section 3.4.3 observes
#: that "more aggressive alpha adjustment would benefit QoS kernels but not
#: the non-QoS kernels so that the total throughput is lowered"; the cap
#: keeps a transiently starved kernel from requesting an unbounded quota.
#: (Owned by :mod:`repro.controllers.base` since the controller split;
#: re-exported here for compatibility.)
from repro.controllers.base import ALPHA_CAP  # noqa: F401 (re-export)
from repro.qos.nonqos import INITIAL_NONQOS_IPC, nonqos_ipc_goal
from repro.qos.quota import QuotaScheme, RolloverScheme, scheme_by_name
from repro.qos.static_alloc import StaticAllocator, symmetric_targets
from repro.sim.policy import PolicyContext, SharingPolicy


class QoSPolicy(SharingPolicy):
    """Fine-grained QoS management over SMK sharing (the paper's design).

    The *control law* — how large each QoS kernel's quota scale (alpha) is
    — is delegated to a pluggable :class:`~repro.controllers.base.\
QuotaController`.  By default that is a
    :class:`~repro.controllers.base.SchemeController` reproducing the
    paper's history-based law bit-for-bit; passing
    :class:`~repro.controllers.pid.PIDQuotaController` or
    :class:`~repro.controllers.mpc.MPCQuotaController` swaps the law while
    keeping this class's plant machinery (quota distribution, boundary
    carry accounting, non-QoS goal search, TB reallocation) unchanged.
    """

    uses_quotas = True

    def __init__(self, scheme: Union[QuotaScheme, str] = None,
                 static_adjustment: bool = True,
                 alpha_cap: float = ALPHA_CAP,
                 controller: Optional[QuotaController] = None):
        if scheme is None:
            scheme = RolloverScheme()
        elif isinstance(scheme, str):
            scheme = scheme_by_name(scheme)
        self.scheme = scheme
        if controller is None:
            controller = SchemeController(use_history=scheme.use_history,
                                          alpha_cap=alpha_cap)
            self.name = f"qos-{scheme.name}"
        else:
            self.name = f"qos-{controller.name}"
        self.controller = controller
        self.static_adjustment = static_adjustment
        self.alpha_cap = alpha_cap
        # Populated at setup().
        self.qos_indices: List[int] = []
        self.nonqos_indices: List[int] = []
        self.goals: Dict[int, float] = {}
        self.alphas: Dict[int, float] = {}
        self.nonqos_goals: Dict[int, float] = {}
        self.ipc_history: Dict[int, float] = {}
        self.epoch_ipc: Dict[int, float] = {}
        # Exponential moving average of per-epoch IPC.  The cumulative
        # ipc_history drives alpha (the paper's formula); TB-allocation
        # decisions use this faster-tracking signal so a long warm-up
        # transient cannot keep granting TBs to a kernel that is already
        # performing above goal (matters at short simulation windows).
        self.recent_ipc: Dict[int, float] = {}
        self.allocator: StaticAllocator = None
        self._measured = False
        self._nonqos_share: List[Dict[int, float]] = []
        self._design_residency: List[set] = []

    # -------------------------------------------------------------- setup

    def setup(self, ctx: PolicyContext) -> None:
        for idx, launch in enumerate(ctx.kernels):
            if launch.is_qos:
                self.qos_indices.append(idx)
                self.goals[idx] = launch.ipc_goal
                self.alphas[idx] = 1.0
            else:
                self.nonqos_indices.append(idx)
                self.nonqos_goals[idx] = INITIAL_NONQOS_IPC
            self.ipc_history[idx] = 0.0
            self.epoch_ipc[idx] = INITIAL_NONQOS_IPC
            self.recent_ipc[idx] = 0.0
        self.allocator = StaticAllocator(ctx.config)
        self._nonqos_share = [dict() for _ in range(ctx.num_sms)]
        self.controller.start(ctx.config, self.qos_indices, self.goals)

        specs = [launch.spec for launch in ctx.kernels]
        targets = symmetric_targets(ctx.config, self.qos_indices,
                                    self.nonqos_indices, specs)
        self._design_residency = [set(sm_targets) for sm_targets in targets]
        for sm_id, sm_targets in enumerate(targets):
            for kernel_idx in range(ctx.num_kernels):
                ctx.set_tb_target(sm_id, kernel_idx,
                                  sm_targets.get(kernel_idx, 0))

    # -------------------------------------------------------------- epochs

    def on_epoch_start(self, ctx: PolicyContext, cycle: int,
                       epoch_index: int) -> None:
        if epoch_index == 0:
            self._refresh_quotas(ctx, first=True)
            return
        self._measure(ctx)
        self._update_alphas(ctx)
        self._update_nonqos_goals()
        if self.static_adjustment:
            # TB allocation chases the alpha-adjusted catch-up target: a
            # kernel whose cumulative IPC still trails its goal must run
            # *above* goal for the remainder, so judging TLP needs against
            # the raw goal would stop growing it too early.
            alloc_goals = {idx: self.alphas[idx] * self.goals[idx]
                           for idx in self.qos_indices}
            self.allocator.adjust(ctx, self.qos_indices,
                                  self.nonqos_indices, self.recent_ipc,
                                  alloc_goals, self._design_residency)
        self._refresh_quotas(ctx, first=False)

    def _measure(self, ctx: PolicyContext) -> None:
        """Per-epoch and cumulative IPC for every kernel, from the epoch
        view the engine snapshots at each boundary."""
        view = ctx.epoch
        for idx in range(ctx.num_kernels):
            epoch_ipc = view.epoch_ipc[idx]
            self.epoch_ipc[idx] = epoch_ipc
            self.ipc_history[idx] = view.cumulative_ipc[idx]
            if self._measured:
                self.recent_ipc[idx] = (0.5 * self.recent_ipc[idx]
                                        + 0.5 * epoch_ipc)
            else:
                self.recent_ipc[idx] = epoch_ipc
        self._measured = True

    def _update_alphas(self, ctx: PolicyContext) -> None:
        """Ask the controller for each QoS kernel's quota scale.

        The default :class:`SchemeController` computes the paper's
        alpha_k = max(IPC_goal / IPC_history, 1), capped (Section 3.4.2);
        PID/MPC controllers substitute their own laws.  The scales land in
        ``self.alphas`` so every downstream consumer (non-QoS goal search,
        TB allocation targets, quota sizing) is controller-agnostic.
        """
        scales = self.controller.on_epoch(ctx, ctx.epoch)
        for idx in self.qos_indices:
            self.alphas[idx] = scales[idx]

    def _update_nonqos_goals(self) -> None:
        """The Section 3.5 artificial-goal search for each non-QoS kernel."""
        qos_epoch = {idx: self.epoch_ipc[idx] for idx in self.qos_indices}
        for idx in self.nonqos_indices:
            self.nonqos_goals[idx] = nonqos_ipc_goal(
                self.epoch_ipc[idx], qos_epoch, self.goals, self.alphas)

    # -------------------------------------------------------------- quotas

    def _kernel_quota(self, ctx: PolicyContext, kernel_idx: int) -> float:
        """Whole-GPU quota for the next epoch, in thread instructions."""
        epoch_length = ctx.config.epoch_length
        if kernel_idx in self.goals:
            return self.alphas[kernel_idx] * self.goals[kernel_idx] * epoch_length
        return self.nonqos_goals[kernel_idx] * epoch_length

    def _refresh_quotas(self, ctx: PolicyContext, first: bool) -> None:
        """Distribute quotas into per-SM counters, TB-proportionally.

        The scheme's carried residual is summed over all SMs and folded
        into the kernel-wide quota before distribution (Section 3.4.4
        treats Quota_k as a whole-kernel quantity): unused quota stranded
        on an SM whose share exceeded its local capacity is thereby
        redistributed to SMs that can actually consume it next epoch.
        """
        num_sms = ctx.num_sms
        scheme = self.scheme
        for kernel_idx in range(ctx.num_kernels):
            quota = self._kernel_quota(ctx, kernel_idx)
            is_qos = kernel_idx in self.goals
            carried = 0.0
            if not first:
                carried = sum(
                    scheme.carry(ctx.quota_counter(sm_id, kernel_idx), is_qos)
                    for sm_id in range(num_sms))
                quota += carried
            total_tbs = ctx.total_tbs(kernel_idx)
            blocked = (not is_qos) and scheme.blocks_nonqos_at_boundary
            for sm_id in range(num_sms):
                tbs = ctx.tb_count(sm_id, kernel_idx)
                if total_tbs > 0:
                    share = quota * tbs / total_tbs
                else:
                    share = quota / num_sms
                if not is_qos:
                    self._nonqos_share[sm_id][kernel_idx] = max(share, 0.0)
                ctx.set_quota(sm_id, kernel_idx, 0.0 if blocked else share)
            state = self.controller.state(kernel_idx)
            ctx.note_quota(kernel_idx, quota, carried,
                           alpha=self.alphas.get(kernel_idx),
                           ipc_goal=self.goals.get(
                               kernel_idx, self.nonqos_goals.get(kernel_idx)),
                           ctrl_error=state.error,
                           ctrl_integral=state.integral,
                           ctrl_prediction=state.prediction)
        ctx.wake_all()

    # ----------------------------------------------------- exhaustion hook

    def on_quota_exhausted(self, ctx: PolicyContext, sm_id: int,
                           kernel_idx: int, cycle: int) -> None:
        if self.scheme.elastic:
            if self._all_resident_exhausted(ctx):
                # Start the next epoch at once (Section 3.4.3); the engine
                # processes the boundary at the top of the next cycle.
                ctx.request_epoch_at(cycle)
            return
        # Naïve-family mid-epoch refill: once every QoS kernel on this SM is
        # out of quota, top up the drained non-QoS kernels so the SM's spare
        # cycles are not wasted (Section 3.4.1).  QoS kernels never receive
        # more quota mid-epoch — their goal for this epoch has been met.
        if not ctx.all_quota_exhausted(sm_id, self._resident_qos(ctx, sm_id)):
            return
        shares = self._nonqos_share[sm_id]
        for nonqos_idx in self.nonqos_indices:
            if (ctx.tb_count(sm_id, nonqos_idx) > 0
                    and ctx.quota_counter(sm_id, nonqos_idx) <= 0):
                ctx.add_quota(sm_id, nonqos_idx,
                              max(shares.get(nonqos_idx, 0.0), 1.0))

    def _resident_qos(self, ctx: PolicyContext, sm_id: int) -> List[int]:
        return [idx for idx in self.qos_indices
                if ctx.tb_count(sm_id, idx) > 0]

    def _all_resident_exhausted(self, ctx: PolicyContext) -> bool:
        for sm_id in range(ctx.num_sms):
            for kernel_idx in range(ctx.num_kernels):
                if (ctx.tb_count(sm_id, kernel_idx) > 0
                        and ctx.quota_counter(sm_id, kernel_idx) > 0):
                    return False
        return True
