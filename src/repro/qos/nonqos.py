"""The artificial IPC goal for non-QoS kernels (Section 3.5).

Non-QoS kernels have no requirement of their own; their quota exists only to
stop them overtaking QoS kernels early in an epoch, while still letting them
soak up every cycle the QoS kernels do not need.  The search rule scales a
non-QoS kernel's goal each epoch by how comfortably the QoS kernels beat
their (alpha-adjusted) goals:

    IPC_goal = IPC_epoch x  prod over QoS kernels k of
               IPC_epoch_of_k / (alpha_k x IPC_goal_of_k)

Starting from a conservatively tiny IPC_epoch (1.0 in the paper and here),
the goal ratchets up while QoS kernels overachieve and collapses as soon as
any QoS kernel falls below its target, returning resources to it.
"""

from __future__ import annotations

from typing import Mapping

#: Section 3.5: "The initial IPC_epoch is 1 in our evaluation."
INITIAL_NONQOS_IPC = 1.0

#: Floor keeping non-QoS kernels from being starved into a zero quota they
#: could never recover from (their measured IPC_epoch would stay 0 forever).
MIN_NONQOS_IPC = 0.5


def nonqos_ipc_goal(own_epoch_ipc: float,
                    qos_epoch_ipc: Mapping[int, float],
                    qos_goals: Mapping[int, float],
                    alphas: Mapping[int, float]) -> float:
    """Compute next epoch's artificial IPC goal for one non-QoS kernel.

    ``qos_epoch_ipc``, ``qos_goals`` and ``alphas`` are keyed by QoS kernel
    index and must share keys.  A QoS kernel that retired nothing this
    epoch (e.g. it finished, or it is fully starved) contributes its worst
    case: the product term is 0, collapsing the non-QoS goal to the floor
    so the QoS kernel can recover.
    """
    if own_epoch_ipc < 0:
        raise ValueError("IPC cannot be negative")
    goal = own_epoch_ipc
    for kernel_idx, epoch_ipc in qos_epoch_ipc.items():
        target = alphas[kernel_idx] * qos_goals[kernel_idx]
        if target <= 0:
            raise ValueError("QoS goals and alphas must be positive")
        goal *= epoch_ipc / target
    return max(goal, MIN_NONQOS_IPC)
