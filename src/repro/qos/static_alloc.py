"""Static resource (TB) allocation and runtime adjustment — Section 3.6.

Two pieces:

* :func:`symmetric_targets` — the initial allocation: QoS kernels are spread
  over every SM; non-QoS kernels get equal spatial partitions; within an SM
  each resident kernel receives an equal share of the thread budget.
* :class:`StaticAllocator` — the per-epoch runtime adjustment: idle-warp
  sampling identifies kernels with excessive TLP ("idle TBs"); a QoS kernel
  that is below goal and out of idle TBs receives one more TB, evicting TBs
  of a victim kernel chosen by the paper's three rules.  Swaps are skipped
  while any preemption is pending, bounding the context-switch overhead.

The allocator observes and actuates exclusively through
:class:`repro.sim.policy.PolicyContext` (occupancy, idle-warp samples, free
resources, preemption state; TB targets and preemption requests).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.config import GPUConfig
from repro.sim.policy import PolicyContext

#: Section 3.6: a kernel with more than this many idle TBs has TLP to spare.
IDLE_TB_SLACK = 1

#: A QoS kernel counts as lagging only below this fraction of its goal:
#: a quota-throttled kernel sits *at* its goal with small oscillation, and
#: treating that as lagging would trigger needless TB churn.
LAG_TOLERANCE = 0.99

#: Hysteresis for returning TBs from an over-achieving QoS kernel to the
#: non-QoS side: the QoS kernel must be predicted to stay this far above its
#: goal after losing the TB.  Prevents grant/reclaim thrash.
RECLAIM_MARGIN = 1.1


def symmetric_targets(config: GPUConfig, qos_indices: Sequence[int],
                      nonqos_indices: Sequence[int],
                      specs: Sequence) -> List[Dict[int, int]]:
    """Initial per-SM TB targets (Section 3.6, "Symmetric TB allocation").

    Returns one ``{kernel_idx: target}`` dict per SM.  QoS kernels appear on
    every SM; the non-QoS kernels split the SMs into equal contiguous
    partitions (e.g. one QoS + two non-QoS kernels on 16 SMs: the QoS kernel
    runs on all 16, each non-QoS kernel on 8).  Within an SM, resident
    kernels get an equal share of the thread budget, converted to TBs.
    """
    num_sms = config.num_sms
    residents: List[List[int]] = [list(qos_indices) for _ in range(num_sms)]
    if nonqos_indices:
        share = num_sms // len(nonqos_indices)
        if share == 0:
            raise ValueError("more non-QoS kernels than SMs")
        for position, kernel_idx in enumerate(nonqos_indices):
            start = position * share
            stop = num_sms if position == len(nonqos_indices) - 1 else start + share
            for sm_id in range(start, stop):
                residents[sm_id].append(kernel_idx)

    targets: List[Dict[int, int]] = []
    for sm_id in range(num_sms):
        resident = residents[sm_id]
        thread_share = config.sm.max_threads // max(1, len(resident))
        slot_share = max(1, config.sm.max_tbs // max(1, len(resident)))
        sm_targets = {}
        for kernel_idx in resident:
            spec = specs[kernel_idx]
            by_threads = max(1, thread_share // spec.threads_per_tb)
            ceiling = spec.max_tbs_per_sm(config.sm)
            sm_targets[kernel_idx] = max(1, min(by_threads, slot_share, ceiling))
        _scale_to_feasible(config, specs, sm_targets)
        targets.append(sm_targets)
    return targets


def _scale_to_feasible(config: GPUConfig, specs: Sequence,
                       sm_targets: Dict[int, int]) -> None:
    """Shrink targets proportionally until their joint demand fits the SM.

    The equal-thread split can overcommit another resource (registers,
    usually); the targets are divided by the worst overcommit ratio so the
    initial allocation is realisable and the runtime adjustment starts from
    a balanced point rather than a dispatch-order artefact.
    """
    capacity = {
        "registers_bytes": config.sm.registers_bytes,
        "shared_memory_bytes": config.sm.shared_memory_bytes,
        "threads": config.sm.max_threads,
        "tbs": config.sm.max_tbs,
    }
    worst = 1.0
    for resource, limit in capacity.items():
        demand = sum(specs[idx].resource_vector()[resource] * count
                     for idx, count in sm_targets.items())
        if limit > 0 and demand > limit:
            worst = max(worst, demand / limit)
    if worst > 1.0:
        for idx in sm_targets:
            sm_targets[idx] = max(1, int(sm_targets[idx] / worst))


class StaticAllocator:
    """Runtime TB adjustment driven by idle-warp sampling."""

    def __init__(self, config: GPUConfig):
        self.config = config
        self.grants = 0
        self.evictions_requested = 0

    # ----------------------------------------------------------- main entry

    def adjust(self, ctx: PolicyContext, qos_indices: Sequence[int],
               nonqos_indices: Sequence[int],
               ipc_history: Dict[int, float],
               ipc_goals: Dict[int, float],
               residency: Optional[List[set]] = None) -> None:
        """One adjustment pass at an epoch boundary.

        Per SM, at most one TB grant per epoch (limits context-switch
        churn).  QoS kernels lagging their goals come first; if the SM has
        free resources a grant is free, otherwise a victim is evicted under
        the Section 3.6 rules.  Non-QoS kernels may also grow, but only
        into genuinely free resources.
        """
        if residency is None:
            residency = [set(range(ctx.num_kernels))
                         for _ in range(ctx.num_sms)]
        swaps_allowed = not ctx.preemption_pending
        for sm_id in range(ctx.num_sms):
            resident = residency[sm_id]
            if self._grant_to_lagging_qos(ctx, sm_id, qos_indices,
                                          nonqos_indices, ipc_history,
                                          ipc_goals, swaps_allowed, resident):
                continue
            if self._grow_into_free(ctx, sm_id, nonqos_indices, resident):
                continue
            if swaps_allowed:
                self._reclaim_for_nonqos(ctx, sm_id, qos_indices,
                                         nonqos_indices, ipc_history,
                                         ipc_goals, resident)

    # ------------------------------------------------------------- qos path

    def _grant_to_lagging_qos(self, ctx, sm_id, qos_indices, nonqos_indices,
                              ipc_history, ipc_goals, swaps_allowed,
                              resident) -> bool:
        for kernel_idx in qos_indices:
            if (ipc_history.get(kernel_idx, 0.0)
                    >= ipc_goals[kernel_idx] * LAG_TOLERANCE):
                continue
            if kernel_idx not in resident:
                continue  # kernel not placed on this SM by design
            target = ctx.tb_target(sm_id, kernel_idx)
            live = ctx.tb_count(sm_id, kernel_idx)
            if self._idle_tbs(ctx, sm_id, kernel_idx) > IDLE_TB_SLACK:
                continue  # has TLP to spare; more TBs would not help
            spec = ctx.kernels[kernel_idx].spec
            if spec.max_tbs_per_sm(self.config.sm) <= live:
                continue
            if live >= target and ctx.can_admit(sm_id, kernel_idx):
                self._raise_target(ctx, sm_id, kernel_idx)
                return True
            if not swaps_allowed:
                continue
            # Either the target itself needs room (live < target) or the
            # target must grow by one; both require evicting a victim.
            victim = self._choose_victim(ctx, sm_id, kernel_idx, qos_indices,
                                         nonqos_indices, ipc_history, ipc_goals)
            if victim is None:
                continue
            victim_idx, evict_count = victim
            # Lower the victim target below its live count so the engine
            # actually context-switches TBs out (not just stops refilling).
            ctx.request_preemption(sm_id, victim_idx, evict_count)
            self.evictions_requested += evict_count
            if live >= target:
                self._raise_target(ctx, sm_id, kernel_idx)
            return True
        return False

    def _raise_target(self, ctx, sm_id, kernel_idx) -> None:
        current = ctx.tb_target(sm_id, kernel_idx)
        ctx.set_tb_target(sm_id, kernel_idx, current + 1)
        self.grants += 1

    # ------------------------------------------------------- victim choice

    def _choose_victim(self, ctx, sm_id, beneficiary_idx, qos_indices,
                       nonqos_indices, ipc_history, ipc_goals):
        """Pick (victim kernel, TBs to evict) per the Section 3.6 rules.

        Eligible victims: any non-QoS kernel; a QoS kernel with at least
        n+1 idle TBs; or a QoS kernel whose history leaves margin:
        IPC_history x (1 - n/N) > IPC_goal.  Non-QoS victims are preferred
        (the one with the most TBs on this SM); QoS victims by margin.
        """
        spec = ctx.kernels[beneficiary_idx].spec
        candidates = []
        for victim_idx in list(nonqos_indices) + list(qos_indices):
            if victim_idx == beneficiary_idx:
                continue
            live = ctx.tb_count(sm_id, victim_idx)
            if live == 0:
                continue
            needed = self._tbs_to_vacate(ctx, sm_id, spec, victim_idx)
            if needed is None or needed > live:
                continue
            if victim_idx in nonqos_indices:
                candidates.append((0, -live, victim_idx, needed))
                continue
            idle_tbs = self._idle_tbs(ctx, sm_id, victim_idx)
            history = ipc_history.get(victim_idx, 0.0)
            total_tbs = ctx.total_tbs(victim_idx)
            margin_ok = (total_tbs > 0 and
                         history * (1 - needed / total_tbs) > ipc_goals[victim_idx])
            if idle_tbs >= needed + 1 or margin_ok:
                surplus = history - ipc_goals[victim_idx]
                candidates.append((1, -surplus, victim_idx, needed))
        if not candidates:
            return None
        candidates.sort()
        _tier, _key, victim_idx, needed = candidates[0]
        return victim_idx, needed

    def _tbs_to_vacate(self, ctx, sm_id, spec, victim_idx) -> Optional[int]:
        """How many victim TBs free enough resources for one TB of ``spec``."""
        victim_spec = ctx.kernels[victim_idx].spec
        demand = spec.resource_vector()
        per_victim_tb = victim_spec.resource_vector()
        free = ctx.free_resources(sm_id)
        needed = 0
        for key, amount in demand.items():
            shortfall = amount - free[key]
            if shortfall <= 0:
                continue
            per_tb = per_victim_tb[key]
            if per_tb <= 0:
                return None  # victim cannot free this resource at all
            needed = max(needed, math.ceil(shortfall / per_tb))
        return max(needed, 1)

    # -------------------------------------------------------------- helpers

    def _idle_tbs(self, ctx, sm_id, kernel_idx) -> float:
        """Mean idle warps expressed in TBs (Section 3.6's idle-TB measure)."""
        warps_per_tb = ctx.warps_per_tb(kernel_idx)
        return ctx.mean_idle_warps(sm_id, kernel_idx) / warps_per_tb

    def _grow_into_free(self, ctx, sm_id, nonqos_indices, resident) -> bool:
        """Let a non-QoS kernel take one more TB if resources are just free.

        This keeps the machine full without touching anyone else; growth by
        eviction is reserved for lagging QoS kernels and for reclaims from
        over-achieving QoS kernels.
        """
        for kernel_idx in nonqos_indices:
            if kernel_idx not in resident:
                continue
            if ctx.tb_count(sm_id, kernel_idx) < ctx.tb_target(sm_id, kernel_idx):
                continue
            if (ctx.tb_count(sm_id, kernel_idx) > 0
                    and self._idle_tbs(ctx, sm_id, kernel_idx) > IDLE_TB_SLACK):
                continue
            if not ctx.can_admit(sm_id, kernel_idx):
                continue
            self._raise_target(ctx, sm_id, kernel_idx)
            return True
        return False

    def _reclaim_for_nonqos(self, ctx, sm_id, qos_indices, nonqos_indices,
                            ipc_history, ipc_goals, resident) -> None:
        """Return a TB from an over-achieving QoS kernel to the non-QoS side.

        "Just enough" resources (Section 3): once a QoS kernel holds more
        TLP than its (throttled) quota can use, parking those TBs only
        starves the non-QoS kernels.  A QoS kernel whose recent IPC would
        stay ``RECLAIM_MARGIN`` above goal with one TB fewer donates one TB
        to a TLP-starved non-QoS kernel on this SM.
        """
        receiver = None
        for kernel_idx in nonqos_indices:
            if kernel_idx not in resident:
                continue
            if ctx.tb_count(sm_id, kernel_idx) < ctx.tb_target(sm_id, kernel_idx):
                return  # a previous reclaim is still materialising
            if (ctx.tb_count(sm_id, kernel_idx) == 0
                    or self._idle_tbs(ctx, sm_id, kernel_idx) <= IDLE_TB_SLACK):
                receiver = kernel_idx
                break
        if receiver is None:
            return
        for donor_idx in qos_indices:
            live = ctx.tb_count(sm_id, donor_idx)
            if live <= 1:
                continue
            total = ctx.total_tbs(donor_idx)
            history = ipc_history.get(donor_idx, 0.0)
            if history < ipc_goals[donor_idx]:
                continue  # never take TBs from a kernel still catching up
            needed = self._tbs_to_vacate(ctx, sm_id,
                                         ctx.kernels[receiver].spec,
                                         donor_idx)
            if needed is None or needed >= live:
                continue
            # Donor eligibility mirrors the Section 3.6 victim rules with
            # hysteresis: enough idle TBs that losing `needed` leaves slack
            # (rule 2), or enough IPC margin to absorb the loss (rule 3).
            idle_slack = self._idle_tbs(ctx, sm_id, donor_idx) >= needed + 2
            predicted = history * (1 - needed / max(1, total))
            margin = predicted > ipc_goals[donor_idx] * RECLAIM_MARGIN
            if not (idle_slack or margin):
                continue
            ctx.request_preemption(sm_id, donor_idx, needed)
            self.evictions_requested += needed
            self._raise_target(ctx, sm_id, receiver)
            return
