"""Fine-grained QoS management for GPU sharing — the paper's contribution.

The public surface:

* :class:`QoSPolicy` — a :class:`repro.sim.SharingPolicy` that plugs the
  QoS Manager + Enhanced Warp Scheduler of Section 3.3 into the simulator.
* The quota schemes of Section 3.4: :class:`NaiveScheme`,
  :class:`HistoryScheme`, :class:`ElasticScheme`, :class:`RolloverScheme`,
  and the CPU-style :class:`RolloverTimeScheme` of Section 4.5.
* :func:`translate_qos_goal` — the application-goal → IPC-goal translation
  of Section 3.2.
* :class:`StaticAllocator` — symmetric TB allocation and runtime
  adjustment of Section 3.6.
"""

from repro.qos.goals import QoSRequirement, TransferModel, translate_qos_goal
from repro.qos.quota import (
    QuotaScheme,
    NaiveScheme,
    HistoryScheme,
    ElasticScheme,
    RolloverScheme,
    RolloverTimeScheme,
    scheme_by_name,
    SCHEME_NAMES,
)
from repro.qos.nonqos import nonqos_ipc_goal
from repro.qos.static_alloc import StaticAllocator, symmetric_targets
from repro.qos.manager import QoSPolicy

__all__ = [
    "QoSRequirement",
    "TransferModel",
    "translate_qos_goal",
    "QuotaScheme",
    "NaiveScheme",
    "HistoryScheme",
    "ElasticScheme",
    "RolloverScheme",
    "RolloverTimeScheme",
    "scheme_by_name",
    "SCHEME_NAMES",
    "nonqos_ipc_goal",
    "StaticAllocator",
    "symmetric_targets",
    "QoSPolicy",
]
