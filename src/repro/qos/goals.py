"""Translating application-level QoS goals into architectural IPC goals.

Section 3.2: QoS goals arrive as application metrics (frame rate, data
rate).  The OS-resident kernel scheduler knows the end-to-end budget,
subtracts the non-kernel latencies (PCIe transfers, queueing), divides the
remaining kernel-time budget into the kernel's instruction count, and ships
the resulting IPC goal to the GPU at dispatch:

    IPC = Instructions_of_Kernel / (Frequency x Kernel_Execution_Time)

This module implements that pipeline.  The harness mostly bypasses it by
sweeping IPC goals as fractions of ``IPC_isolated`` (exactly as the paper's
evaluation does), but the examples use it to show the full path from a
frame-rate requirement to a hardware goal.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransferModel:
    """PCIe transfer-time model: fixed latency plus bandwidth term.

    A discrete GPU must move each frame's data over PCIe; the transfer time
    is linear in size (Section 3.2).  A unified-memory system sets
    ``bandwidth_bytes_per_s`` to 0-cost by using :meth:`unified`.
    """

    fixed_latency_s: float = 5e-6
    bandwidth_bytes_per_s: float = 12e9  # ~PCIe 3.0 x16 effective

    @classmethod
    def unified(cls) -> "TransferModel":
        """Unified architecture: the driver maps host memory, no copies."""
        return cls(fixed_latency_s=0.0, bandwidth_bytes_per_s=float("inf"))

    def transfer_time_s(self, num_bytes: int) -> float:
        if num_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.fixed_latency_s + num_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class QoSRequirement:
    """An application-level requirement for one repeatedly launched kernel.

    ``deadline_s`` is the end-to-end budget per kernel invocation — e.g. a
    60 FPS video kernel has ``deadline_s = 1/60``.  ``instructions`` is the
    kernel's (predicted) total thread-instruction count; Section 3.2 notes
    datacenter workloads are stable enough for this to be learned online.
    """

    deadline_s: float
    instructions: int
    input_bytes: int = 0
    output_bytes: int = 0
    queueing_s: float = 0.0

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if self.instructions <= 0:
            raise ValueError("instruction count must be positive")
        if self.queueing_s < 0:
            raise ValueError("queueing time must be non-negative")

    @classmethod
    def from_frame_rate(cls, fps: float, instructions: int,
                        **kwargs) -> "QoSRequirement":
        """Frame rate is kernel completion rate: one kernel per frame."""
        if fps <= 0:
            raise ValueError("frame rate must be positive")
        return cls(deadline_s=1.0 / fps, instructions=instructions, **kwargs)


def translate_qos_goal(requirement: QoSRequirement, core_freq_mhz: float,
                       transfers: TransferModel = TransferModel()) -> float:
    """Compute the IPC goal the GPU must sustain to meet the requirement.

    Subtracts transfer and queueing time from the deadline to obtain the
    pure kernel execution budget, then applies the Section 3.2 formula.
    Raises ``ValueError`` when the non-kernel latencies already exceed the
    deadline (the goal is unachievable no matter how the GPU is managed).
    """
    overhead = (transfers.transfer_time_s(requirement.input_bytes)
                + transfers.transfer_time_s(requirement.output_bytes)
                + requirement.queueing_s)
    kernel_budget_s = requirement.deadline_s - overhead
    if kernel_budget_s <= 0:
        raise ValueError(
            f"non-kernel latencies ({overhead:.6f}s) exceed the deadline "
            f"({requirement.deadline_s:.6f}s); no IPC goal can satisfy it")
    frequency_hz = core_freq_mhz * 1e6
    return requirement.instructions / (frequency_hz * kernel_budget_s)
