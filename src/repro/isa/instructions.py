"""Warp-level instruction descriptors.

Six operation classes cover everything the QoS mechanisms can observe:

``ALU``
    Integer/FP pipelined arithmetic.  Back-to-back independent ALU work
    issues every cycle; a dependent instruction waits the ALU latency.
``SFU``
    Special-function / transcendental work (long, unpipelined-ish).
``LDG`` / ``STG``
    Global memory loads and stores.  Loads stall the issuing warp until the
    memory subsystem returns; stores retire immediately but consume
    memory-controller bandwidth.
``LDS``
    Shared-memory (scratchpad) access, fixed on-chip latency.
``BAR``
    TB-wide barrier: the warp parks until every warp of the TB arrives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.IntEnum):
    ALU = 0
    SFU = 1
    LDG = 2
    STG = 3
    LDS = 4
    BAR = 5


COMPUTE_OPCODES = frozenset({Opcode.ALU, Opcode.SFU})
MEMORY_OPCODES = frozenset({Opcode.LDG, Opcode.STG, Opcode.LDS})


def is_global_memory(op: Opcode) -> bool:
    """True for operations that travel through L1 and the interconnect."""
    return op is Opcode.LDG or op is Opcode.STG


@dataclass(frozen=True)
class WarpInstruction:
    """One warp-wide instruction slot in a kernel's instruction pattern.

    ``active_lanes`` models branch divergence: quotas are decremented by the
    number of lanes that actually execute (Section 3.4.1: "decremented by the
    number of instructions that are actually executed in the warp instruction
    (<= 32 due to branch divergence)").

    ``dependent`` marks whether this instruction consumes the previous
    instruction's result: a dependent ALU op waits the full ALU latency while
    an independent one issues the next cycle.  Kernel specs use this to model
    ILP without simulating registers.
    """

    opcode: Opcode
    active_lanes: int = 32
    dependent: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.active_lanes <= 32:
            raise ValueError("active_lanes must be in [1, 32]")
