"""A minimal SIMT instruction-set abstraction.

The simulator does not interpret real machine code; kernels are modelled as
streams of *warp instructions*, each tagged with an operation class that
determines its issue behaviour and latency (see
:class:`repro.config.LatencyConfig`).  This is the same level of abstraction
at which the paper's mechanisms operate: quotas count retired thread
instructions, and the warp scheduler only needs to know whether a warp is
ready and which kernel it belongs to.
"""

from repro.isa.instructions import (
    Opcode,
    WarpInstruction,
    COMPUTE_OPCODES,
    MEMORY_OPCODES,
    is_global_memory,
)

__all__ = [
    "Opcode",
    "WarpInstruction",
    "COMPUTE_OPCODES",
    "MEMORY_OPCODES",
    "is_global_memory",
]
