"""``repro serve``: run one online-serving case and emit its request trace.

Mirrors ``repro trace`` (one case, JSONL out, human summary on stderr) but
for the serving layer: a seeded arrival process drives the dispatcher on a
preset machine, the per-request records stream out as JSONL (stdout or
``-o``), and a per-class latency/SLO summary lands on stderr.

Examples::

    repro-gpu-qos serve                                # poisson on defaults
    repro-gpu-qos serve --load 1500 --seed 7 -o run.jsonl
    repro-gpu-qos serve --process periodic --period 4000
    repro-gpu-qos serve --admission cap:4 --max-concurrent 2
    repro-gpu-qos serve --class rt:mri-q:8000 --class batch:lbm:40000:16:0.5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.config import ENGINE_CORES

#: Default two-class workload: a latency-sensitive compute kernel and a
#: throughput-oriented memory kernel — the canonical serving mix.  Grids
#: are small (4 TBs) so requests actually drain within a preset's horizon
#: on the 4-SM fast machine.
DEFAULT_CLASSES = (("latency", "mri-q", 24000, 4, 1.0),
                   ("batch", "lbm", 96000, 4, 1.0))


def parse_class(text: str) -> Tuple[str, str, int, int, float]:
    """``name:kernel:slo[:grid_tbs[:weight]]`` -> a ServeSpec class row."""
    parts = text.split(":")
    if not 3 <= len(parts) <= 5:
        raise argparse.ArgumentTypeError(
            f"class spec {text!r} must be name:kernel:slo[:grid[:weight]]")
    name, kernel, slo = parts[0], parts[1], int(parts[2])
    grid = int(parts[3]) if len(parts) > 3 else 8
    weight = float(parts[4]) if len(parts) > 4 else 1.0
    return (name, kernel, slo, grid, weight)


def build_serve_parser() -> argparse.ArgumentParser:
    from repro.harness.runner import POLICY_NAMES
    from repro.serve.runner import PROCESS_NAMES

    parser = argparse.ArgumentParser(
        prog="repro-gpu-qos serve",
        description="Serve an open-loop request stream against one "
                    "simulated GPU and write per-request records as JSONL")
    parser.add_argument("--process", default="poisson", choices=PROCESS_NAMES,
                        help="arrival process (default: poisson)")
    parser.add_argument("--load", type=float, default=2000.0, metavar="CYC",
                        help="mean inter-arrival gap in cycles for the "
                             "stochastic processes (default: 2000)")
    parser.add_argument("--period", type=int, default=4000, metavar="CYC",
                        help="period for periodic/diurnal processes "
                             "(default: 4000)")
    parser.add_argument("--horizon", type=int, default=None, metavar="CYC",
                        help="serving horizon in cycles (default: the "
                             "preset's measured cycles)")
    parser.add_argument("--seed", type=int, default=0,
                        help="arrival-process seed (default: 0)")
    parser.add_argument("--admission", default="always", metavar="POLICY",
                        help="admission policy: always, cap:<n>, or slo "
                             "(default: always)")
    parser.add_argument("--max-concurrent", type=int, default=4, metavar="N",
                        help="concurrent requests on the GPU (default: 4)")
    parser.add_argument("--policy", default="smk", choices=POLICY_NAMES,
                        help="sharing scheme between concurrent requests "
                             "(default: smk)")
    parser.add_argument("--class", dest="classes", action="append",
                        type=parse_class, metavar="NAME:KERNEL:SLO[:GRID[:W]]",
                        help="request class (repeatable; default: a "
                             "latency + batch mix on mri-q and lbm)")
    parser.add_argument("--preset", default="fast",
                        choices=("fast", "paper", "smoke"),
                        help="machine/scale preset (default: fast)")
    parser.add_argument("--engine-core", default=None, choices=ENGINE_CORES,
                        help="override the preset's simulation core "
                             "(default: the preset's engine_core)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the persistent case cache")
    parser.add_argument("-o", "--output", default=None,
                        help="request-trace file path (default: stdout)")
    return parser


def _spec_params(args) -> List[Tuple[str, float]]:
    if args.process == "poisson":
        return [("mean_interarrival_cycles", float(args.load))]
    if args.process == "bursty":
        return [("burst_interarrival", float(args.load) / 4.0),
                ("idle_interarrival", float(args.load) * 4.0),
                ("mean_burst_cycles", float(args.period)),
                ("mean_idle_cycles", float(args.period))]
    if args.process == "diurnal":
        return [("amplitude", 0.8),
                ("mean_interarrival_cycles", float(args.load)),
                ("period_cycles", float(args.period))]
    return [("period_cycles", float(args.period))]


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.cli import _apply_engine_core
    from repro.harness.presets import experiment_preset
    from repro.serve.metrics import write_request_trace
    from repro.serve.runner import ServeRunner, ServeSpec

    args = build_serve_parser().parse_args(argv)
    preset = _apply_engine_core(experiment_preset(args.preset),
                                args.engine_core)
    horizon = args.horizon if args.horizon else preset.cycles
    classes = tuple(args.classes) if args.classes else DEFAULT_CLASSES
    spec = ServeSpec(
        process=args.process,
        params=tuple(sorted(_spec_params(args))),
        classes=classes,
        seed=args.seed,
        horizon_cycles=horizon,
        admission=args.admission,
        max_concurrent=args.max_concurrent,
        policy=args.policy,
    )
    cache = None
    if not args.no_cache:
        from repro.harness.cache import open_default_cache
        cache = open_default_cache()
    runner = ServeRunner(preset.gpu, cache=cache)
    try:
        outcome = runner.run_spec(spec)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    meta = {"spec": spec.payload(), "preset": args.preset,
            "engine_core": preset.gpu.engine_core}
    if args.output:
        with open(args.output, "w") as stream:
            count = write_request_trace(stream, outcome.records, meta=meta)
        print(f"wrote {count} request records to {args.output}",
              file=sys.stderr)
    else:
        write_request_trace(sys.stdout, outcome.records, meta=meta)
    print(f"[serve: {outcome.generated} generated, {outcome.admitted} "
          f"admitted, {outcome.rejected} rejected, {outcome.completed} "
          f"completed, {outcome.unfinished} unfinished over "
          f"{outcome.horizon_cycles} cycles]", file=sys.stderr)
    from repro.serve.metrics import class_summary
    for name, row in class_summary(outcome.records).items():
        attainment = 100.0 * row["slo_attainment"]
        print(f"[{name}: p50 {row['p50_latency']} p99 {row['p99_latency']} "
              f"cycles, SLO attainment {attainment:.1f}%]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
