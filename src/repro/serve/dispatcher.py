"""The serving dispatcher: queues and admission control in front of the GPU.

Requests (:mod:`repro.serve.arrivals`) arrive open-loop; the dispatcher
holds them in per-class FIFO queues, applies a pluggable admission policy
at arrival, and drives the simulator's mid-run kernel lifecycle — each
admitted request becomes a finite-grid :class:`~repro.sim.engine.
LaunchedKernel` injected via ``GPUSimulator.launch_at`` and observed back
out through the engine's ``on_kernel_retired`` callback.  Launch/retire
processing happens at fixed loop-top points inside the engine, so a served
workload replays record-identically on the scan, event and batch cores
(the differential in ``tests/test_event_core.py`` enforces this).

Admission policies:

* :class:`AlwaysAdmit` — the open-loop baseline; every request queues.
* :class:`QueueCap` — reject when the request's class queue is at its cap
  (classic load shedding; the rejection accounting feeds SLO attainment).
* :class:`SLOFeasibility` — learn per-class service times online with
  :class:`repro.osched.predictor.OnlineDemandPredictor` and reject
  requests whose predicted completion would blow their SLO anyway
  (admitting them only wastes capacity that feasible requests need).

The dispatcher is deterministic end to end: its only inputs are the
request stream and simulator state, and every decision happens at an
integer cycle.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.kernels import get_kernel
from repro.osched.predictor import OnlineDemandPredictor
from repro.serve.arrivals import Request
from repro.serve.metrics import RequestRecord, class_summary
from repro.sim.engine import GPUSimulator, LaunchedKernel, SharingPolicy
from repro.sim.stats import SimulationResult
from repro.sim.telemetry import EpochRecord, TelemetryRecorder

#: Default concurrent-request bound: enough to share the GPU, small enough
#: that queueing (the thing being studied) actually happens.
DEFAULT_MAX_CONCURRENT = 4


class AdmissionPolicy:
    """Decide at arrival whether a request may queue.

    :meth:`admit` returns ``None`` to admit or a short reject-reason string;
    the reason lands verbatim in the request record, so accounting tests can
    assert *why* a request was shed.
    """

    name = "always"

    def admit(self, request: Request, dispatcher: "Dispatcher",
              cycle: int) -> Optional[str]:
        return None


class AlwaysAdmit(AdmissionPolicy):
    """Admit everything (open-loop baseline)."""


class QueueCap(AdmissionPolicy):
    """Reject when the request's class queue already holds ``cap`` entries."""

    def __init__(self, cap: int):
        if cap <= 0:
            raise ValueError("queue cap must be positive")
        self.cap = int(cap)
        self.name = f"cap:{self.cap}"

    def admit(self, request: Request, dispatcher: "Dispatcher",
              cycle: int) -> Optional[str]:
        if dispatcher.queue_depth(request.request_class) >= self.cap:
            return "queue-cap"
        return None


class SLOFeasibility(AdmissionPolicy):
    """Reject requests whose SLO is already infeasible at arrival.

    Service times are learned online per class (EWMA mean + mean absolute
    deviation, :class:`~repro.osched.predictor.OnlineDemandPredictor`); a
    request is shed when the backlog's predicted drain time plus its own
    margin-padded service estimate exceeds its SLO.  Until the predictor
    has warmed up for a class, requests are admitted optimistically — the
    first few completions are the training data.
    """

    name = "slo-feasibility"

    def __init__(self, sigmas: float = 2.0, alpha: float = 0.25,
                 warmup_samples: int = 3):
        self.sigmas = float(sigmas)
        self.predictor = OnlineDemandPredictor(alpha=alpha,
                                               warmup_samples=warmup_samples)

    def observe_service(self, request_class: str, service_cycles: int) -> None:
        self.predictor.observe(request_class, service_cycles)

    def admit(self, request: Request, dispatcher: "Dispatcher",
              cycle: int) -> Optional[str]:
        predictor = self.predictor
        if not predictor.ready(request.request_class):
            return None
        own = predictor.estimate(request.request_class).with_margin(
            self.sigmas)
        backlog = 0.0
        for class_name, depth in dispatcher.queue_depths():
            if depth and predictor.ready(class_name):
                backlog += depth * predictor.estimate(class_name).mean
        backlog += dispatcher.inflight_count * own
        slots = max(1, dispatcher.max_concurrent)
        predicted_latency = backlog / slots + own
        if predicted_latency > request.slo_cycles:
            return "slo-infeasible"
        return None


@dataclass(frozen=True)
class ServeResult:
    """Everything a served workload produced, in request-id order."""

    records: Tuple[RequestRecord, ...]
    horizon_cycles: int
    generated: int
    admitted: int
    rejected: int
    completed: int
    unfinished: int
    sim_result: Optional[SimulationResult]
    telemetry: Tuple[EpochRecord, ...]

    def summary(self) -> Dict[str, dict]:
        return class_summary(self.records)


class _Entry:
    """Mutable per-request bookkeeping while a request is in flight."""

    __slots__ = ("request", "reject_reason", "start_cycle", "finish_cycle")

    def __init__(self, request: Request):
        self.request = request
        self.reject_reason: Optional[str] = None
        self.start_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None


class Dispatcher:
    """Serve a request stream against one simulated GPU.

    ``class_priority`` maps class names to priorities (lower serves first);
    classes default to priority 0, which degenerates to global FIFO by
    arrival.  ``max_concurrent`` bounds how many requests run on the GPU
    simultaneously; everything else waits in its class queue.
    """

    def __init__(self, config: GPUConfig,
                 policy: Optional[SharingPolicy] = None,
                 admission: Optional[AdmissionPolicy] = None,
                 max_concurrent: int = DEFAULT_MAX_CONCURRENT,
                 class_priority: Optional[Mapping[str, int]] = None,
                 telemetry: bool = False):
        if max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        self.config = config
        self.policy = policy
        self.admission = admission if admission is not None else AlwaysAdmit()
        self.max_concurrent = int(max_concurrent)
        self.class_priority = dict(class_priority or {})
        self.telemetry_enabled = telemetry
        self._queues: Dict[str, Deque[_Entry]] = {}
        self._inflight: Dict[int, _Entry] = {}
        self._sim: Optional[GPUSimulator] = None

    # ------------------------------------------------------- admission views

    def queue_depth(self, class_name: str) -> int:
        queue = self._queues.get(class_name)
        return len(queue) if queue else 0

    def queue_depths(self) -> List[Tuple[str, int]]:
        return [(name, len(queue)) for name, queue in self._queues.items()]

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    # -------------------------------------------------------------- serving

    def serve(self, requests: Sequence[Request],
              horizon_cycles: int) -> ServeResult:
        """Run the stream to ``horizon_cycles``; returns per-request records.

        The loop alternates simulator segments with arrival processing:
        the simulator runs to the next arrival cycle (completions inside
        the segment re-fill the GPU via the engine's retire callback), then
        the arrivals due at that cycle pass admission and the queues pump.
        """
        if horizon_cycles <= 0:
            raise ValueError("horizon_cycles must be positive")
        for earlier, later in zip(requests, requests[1:]):
            if later.arrival_cycle < earlier.arrival_cycle:
                raise ValueError("requests must be sorted by arrival cycle")
        recorder = TelemetryRecorder() if self.telemetry_enabled else None
        sim = GPUSimulator(self.config, [], policy=self.policy,
                           telemetry=recorder, allow_empty=True)
        sim.on_kernel_retired = self._on_kernel_retired
        sim.setup()
        self._sim = sim
        self._queues = {}
        self._inflight = {}
        entries = [_Entry(request) for request in requests
                   if request.arrival_cycle < horizon_cycles]
        cursor = 0
        while True:
            if cursor < len(entries):
                target = min(entries[cursor].request.arrival_cycle,
                             horizon_cycles)
            elif self._inflight or any(self._queues.values()):
                target = horizon_cycles
            else:
                break
            if target > sim.cycle:
                sim.run(target - sim.cycle)
            if sim.cycle >= horizon_cycles:
                break
            cycle = sim.cycle
            while (cursor < len(entries)
                   and entries[cursor].request.arrival_cycle <= cycle):
                entry = entries[cursor]
                cursor += 1
                reason = self.admission.admit(entry.request, self, cycle)
                if reason is None:
                    self._queues.setdefault(entry.request.request_class,
                                            deque()).append(entry)
                else:
                    entry.reject_reason = reason
            self._pump(cycle)
        telemetry = sim.finalize_telemetry()
        sim_result = sim.result() if sim.num_kernels else None
        records = tuple(self._record(entry) for entry in entries)
        admitted = sum(1 for r in records if r.admitted)
        completed = sum(1 for r in records if r.completed)
        self._sim = None
        return ServeResult(
            records=records,
            horizon_cycles=horizon_cycles,
            generated=len(records),
            admitted=admitted,
            rejected=len(records) - admitted,
            completed=completed,
            unfinished=admitted - completed,
            sim_result=sim_result,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------- internals

    def _pump(self, cycle: int) -> None:
        """Launch queued requests while concurrency slots are free."""
        sim = self._sim
        while len(self._inflight) < self.max_concurrent:
            entry = self._pop_next_queued()
            if entry is None:
                return
            request = entry.request
            spec = dataclasses.replace(
                get_kernel(request.kernel),
                name=f"{request.kernel}@{request.request_id}")
            kernel_idx = sim.launch_at(
                max(cycle, sim.cycle),
                LaunchedKernel(spec=spec, grid_tbs=request.grid_tbs))
            self._inflight[kernel_idx] = entry

    def _pop_next_queued(self) -> Optional[_Entry]:
        """Next request across the class queues: lowest (priority, arrival,
        id) wins — FIFO within a class, priority between classes."""
        best_name = None
        best_key = None
        for name, queue in self._queues.items():
            if not queue:
                continue
            head = queue[0].request
            key = (self.class_priority.get(name, 0), head.arrival_cycle,
                   head.request_id)
            if best_key is None or key < best_key:
                best_key = key
                best_name = name
        if best_name is None:
            return None
        return self._queues[best_name].popleft()

    def _on_kernel_retired(self, kernel_idx: int, cycle: int) -> None:
        """Engine callback: a request's grid drained — close it out and
        refill the freed concurrency slot from the queues."""
        entry = self._inflight.pop(kernel_idx, None)
        if entry is None:
            return
        sim = self._sim
        entry.start_cycle = sim.kernel_launch_cycle[kernel_idx]
        entry.finish_cycle = cycle
        if isinstance(self.admission, SLOFeasibility):
            self.admission.observe_service(
                entry.request.request_class, cycle - entry.start_cycle)
        self._pump(cycle)

    def _record(self, entry: _Entry) -> RequestRecord:
        """Freeze one request's bookkeeping into its immutable record."""
        request = entry.request
        sim = self._sim
        admitted = entry.reject_reason is None
        start = entry.start_cycle
        finish = entry.finish_cycle
        if start is None and finish is None and admitted:
            # Still queued or in flight at the horizon: recover the launch
            # cycle for requests that reached the GPU but never completed.
            for kernel_idx, inflight in self._inflight.items():
                if inflight is entry and kernel_idx < sim.num_kernels:
                    start = sim.kernel_launch_cycle[kernel_idx]
                    break
        completed = finish is not None
        queue_wait = (start - request.arrival_cycle
                      if start is not None else None)
        service = (finish - start
                   if completed and start is not None else None)
        latency = (finish - request.arrival_cycle if completed else None)
        return RequestRecord(
            request_id=request.request_id,
            request_class=request.request_class,
            kernel=request.kernel,
            arrival_cycle=request.arrival_cycle,
            slo_cycles=request.slo_cycles,
            grid_tbs=request.grid_tbs,
            admitted=admitted,
            reject_reason=entry.reject_reason,
            start_cycle=start,
            finish_cycle=finish,
            queue_wait_cycles=queue_wait,
            service_cycles=service,
            latency_cycles=latency,
            completed=completed,
            slo_met=(completed and latency is not None
                     and latency <= request.slo_cycles),
        )
