"""Online serving on the simulated GPU: arrivals, dispatch, SLO scoring.

The paper evaluates fine-grained sharing between co-runs fixed at cycle 0;
this package puts the same machine behind a datacenter-style open-loop
front end.  :mod:`repro.serve.arrivals` generates seeded request streams in
the cycle domain, :mod:`repro.serve.dispatcher` queues them, applies
admission control and drives the engine's mid-run launch/retire path, and
:mod:`repro.serve.metrics` scores the per-request outcomes (latency
percentiles, SLO attainment) and round-trips them as JSONL.

Harness integration (memoised runs, cached and resumable load sweeps)
lives in :mod:`repro.serve.runner`; the ``repro serve`` command in
:mod:`repro.serve.cli`.  Both are imported lazily by their entry points,
not re-exported here, so importing :mod:`repro.serve` stays cheap.
"""

from repro.serve.arrivals import (ArrivalProcess, BurstyArrivals,
                                  DiurnalArrivals, PeriodicArrivals,
                                  PoissonArrivals, Request, RequestClass,
                                  request_from_dict, trace_arrivals)
from repro.serve.dispatcher import (DEFAULT_MAX_CONCURRENT, AdmissionPolicy,
                                    AlwaysAdmit, Dispatcher, QueueCap,
                                    ServeResult, SLOFeasibility)
from repro.serve.metrics import (REQUEST_SCHEMA_VERSION, RequestRecord,
                                 class_summary, latency_cdf, percentile,
                                 read_request_trace, request_record_from_dict,
                                 request_record_to_dict, validate_request_dict,
                                 write_request_trace)

__all__ = [
    "ArrivalProcess", "BurstyArrivals", "DiurnalArrivals", "PeriodicArrivals",
    "PoissonArrivals", "Request", "RequestClass", "request_from_dict",
    "trace_arrivals",
    "DEFAULT_MAX_CONCURRENT", "AdmissionPolicy", "AlwaysAdmit", "Dispatcher",
    "QueueCap", "ServeResult", "SLOFeasibility",
    "REQUEST_SCHEMA_VERSION", "RequestRecord", "class_summary", "latency_cdf",
    "percentile", "read_request_trace", "request_record_from_dict",
    "request_record_to_dict", "validate_request_dict", "write_request_trace",
]
