"""Memoised execution of serving cases (the load-sweep harness).

A serving evaluation is a grid of independent *serving cases* — one
arrival process at one load level under one admission policy — exactly
like a figure sweep is a grid of co-run cases.  This module gives serving
cases the same three-layer execution contract co-run cases get from
:class:`repro.harness.runner.CaseRunner`:

* an in-process memo keyed by the full :class:`ServeSpec`;
* the persistent :class:`repro.harness.cache.CaseCache` (entry kind
  ``serve``, keyed by :func:`repro.harness.cache.serve_key`, salted by the
  same code digest as co-run records);
* pull-based sweeps through :class:`repro.harness.expdb.ExperimentDB`
  (claim-by-update), so an interrupted load sweep resumes instead of
  restarting and every sweep has a content-derived experiment id for
  provenance.

Parallelism is inlined rather than imported from
:mod:`repro.harness.parallel`: this module sits inside the code-salt
closure (serving results are cached), and pulling the generic pool runner
in would drag an unsalted module into that closure (lint rule SALT001).
The pool protocol is the same — module-level worker init + task functions
so they pickle, one throwaway serial :class:`ServeRunner` per worker,
graceful degradation to the serial claim loop when the platform refuses a
process pool — which is what keeps parallel sweeps byte-identical to
serial ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import GPUConfig
from repro.harness.runner import SweepInterrupted, make_policy
from repro.serve.arrivals import (ArrivalProcess, BurstyArrivals,
                                  DiurnalArrivals, PeriodicArrivals,
                                  PoissonArrivals, RequestClass)
from repro.serve.dispatcher import (AdmissionPolicy, AlwaysAdmit, Dispatcher,
                                    QueueCap, SLOFeasibility)
from repro.serve.metrics import (RequestRecord, request_record_from_dict,
                                 request_record_to_dict)

ENV_WORKERS = "REPRO_WORKERS"

#: Arrival-process names accepted by :attr:`ServeSpec.process`.
PROCESS_NAMES = ("poisson", "bursty", "diurnal", "periodic")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > ``REPRO_WORKERS`` > ``cpu_count() - 1`` (min 1).

    Same resolution order as the co-run harness, re-read here so this
    module stays outside :mod:`repro.harness.parallel` (see module
    docstring for why).
    """
    if workers is None:
        env = os.environ.get(ENV_WORKERS, "").strip()
        if env:
            workers = int(env)
        else:
            workers = (os.cpu_count() or 2) - 1
    return max(1, workers)


@dataclass(frozen=True)
class ServeSpec:
    """One serving case, declaratively: everything :meth:`ServeRunner.run_spec`
    needs to rebuild the arrival stream, dispatcher and admission policy.

    ``params`` holds the arrival process's numeric parameters as sorted
    ``(name, value)`` pairs so the spec stays hashable and its payload is
    canonical; ``classes`` rows are ``(name, kernel, slo_cycles, grid_tbs,
    weight)`` tuples mirroring :class:`repro.serve.arrivals.RequestClass`.
    """

    process: str
    params: Tuple[Tuple[str, float], ...]
    classes: Tuple[Tuple[str, str, int, int, float], ...]
    seed: int
    horizon_cycles: int
    admission: str = "always"
    max_concurrent: int = 4
    policy: str = "smk"

    def __post_init__(self) -> None:
        if self.process not in PROCESS_NAMES:
            raise ValueError(f"unknown arrival process {self.process!r}; "
                             f"expected one of {PROCESS_NAMES}")
        if self.horizon_cycles <= 0:
            raise ValueError("horizon_cycles must be positive")
        if not self.classes:
            raise ValueError("a serving case needs at least one class")

    @property
    def key(self) -> tuple:
        """The in-process memo key (the spec is its own identity)."""
        return (self.process, self.params, self.classes, self.seed,
                self.horizon_cycles, self.admission, self.max_concurrent,
                self.policy)

    def payload(self) -> dict:
        """Plain JSON-able form, the shape stored in the experiment DB."""
        return {"process": self.process,
                "params": {name: value for name, value in self.params},
                "classes": [list(row) for row in self.classes],
                "seed": self.seed,
                "horizon_cycles": self.horizon_cycles,
                "admission": self.admission,
                "max_concurrent": self.max_concurrent,
                "policy": self.policy}

    @classmethod
    def from_payload(cls, payload: dict) -> "ServeSpec":
        return cls(
            process=payload["process"],
            params=tuple(sorted(
                (str(name), float(value))
                for name, value in payload["params"].items())),
            classes=tuple(
                (str(row[0]), str(row[1]), int(row[2]), int(row[3]),
                 float(row[4]))
                for row in payload["classes"]),
            seed=int(payload["seed"]),
            horizon_cycles=int(payload["horizon_cycles"]),
            admission=payload["admission"],
            max_concurrent=int(payload["max_concurrent"]),
            policy=payload["policy"])

    # -------------------------------------------------------------- builders

    def request_classes(self) -> Tuple[RequestClass, ...]:
        return tuple(RequestClass(name=name, kernel=kernel, slo_cycles=slo,
                                  grid_tbs=grid, weight=weight)
                     for name, kernel, slo, grid, weight in self.classes)

    def build_process(self) -> ArrivalProcess:
        classes = self.request_classes()
        params = {name: value for name, value in self.params}
        if self.process == "poisson":
            return PoissonArrivals(classes,
                                   params["mean_interarrival_cycles"],
                                   seed=self.seed)
        if self.process == "bursty":
            return BurstyArrivals(classes,
                                  params["burst_interarrival"],
                                  params["idle_interarrival"],
                                  params["mean_burst_cycles"],
                                  params["mean_idle_cycles"],
                                  seed=self.seed)
        if self.process == "diurnal":
            return DiurnalArrivals(classes,
                                   params["mean_interarrival_cycles"],
                                   int(params["period_cycles"]),
                                   amplitude=params.get("amplitude", 0.8),
                                   seed=self.seed)
        return PeriodicArrivals(classes, int(params["period_cycles"]),
                                seed=self.seed)

    def build_admission(self) -> AdmissionPolicy:
        if self.admission == "always":
            return AlwaysAdmit()
        if self.admission.startswith("cap:"):
            return QueueCap(int(self.admission.split(":", 1)[1]))
        if self.admission == "slo":
            return SLOFeasibility()
        raise ValueError(f"unknown admission policy {self.admission!r}; "
                         f"expected 'always', 'cap:<n>' or 'slo'")


@dataclass(frozen=True)
class ServeCaseOutcome:
    """The cached result of one serving case: the full request-record
    stream plus the dispatcher's counters.  (Telemetry is deliberately not
    part of the cached shape — serving analysis is request-level; epoch
    telemetry stays a :class:`repro.serve.dispatcher.Dispatcher` concern.)
    """

    records: Tuple[RequestRecord, ...]
    horizon_cycles: int
    generated: int
    admitted: int
    rejected: int
    completed: int
    unfinished: int

    def to_value(self) -> dict:
        """The JSON shape stored under cache kind ``serve``."""
        return {"records": [request_record_to_dict(r) for r in self.records],
                "horizon_cycles": self.horizon_cycles,
                "generated": self.generated,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "unfinished": self.unfinished}

    @classmethod
    def from_value(cls, value: dict) -> "ServeCaseOutcome":
        return cls(
            records=tuple(request_record_from_dict(payload)
                          for payload in value["records"]),
            horizon_cycles=int(value["horizon_cycles"]),
            generated=int(value["generated"]),
            admitted=int(value["admitted"]),
            rejected=int(value["rejected"]),
            completed=int(value["completed"]),
            unfinished=int(value["unfinished"]))


# ----------------------------------------------------------------- workers
# Module-level so they pickle; one throwaway serial ServeRunner per pool
# worker (built once, in the initializer), mirroring the co-run pool
# protocol without importing it.

_SERVE_WORKER: Optional["ServeRunner"] = None


def _serve_worker_init(gpu: GPUConfig) -> None:
    global _SERVE_WORKER
    _SERVE_WORKER = ServeRunner(gpu, workers=1)


def _run_serve_task(spec: ServeSpec) -> ServeCaseOutcome:
    return _SERVE_WORKER.run_spec(spec)


class ServeRunner:
    """Runs and memoises serving cases; sweeps are pull-based experiments."""

    def __init__(self, gpu: GPUConfig, cache=None, expdb=None,
                 workers: Optional[int] = None):
        self.gpu = gpu
        #: Optional :class:`repro.harness.cache.CaseCache`; consulted on
        #: memo misses, fed on every fresh serve (entry kind ``serve``).
        self.cache = cache
        #: Optional :class:`repro.harness.expdb.ExperimentDB`; when set,
        #: :meth:`sweep` registers its grid there and becomes resumable.
        self.expdb = expdb
        self.workers = resolve_workers(workers)
        #: ``(experiment id, spec hash)`` of every sweep registered in the
        #: *persistent* store — the provenance raw material.
        self.experiment_log: List[Tuple[str, str]] = []
        #: Test seam: raise :class:`SweepInterrupted` after this many cases
        #: of a sweep complete.  None (the default) never fires.
        self.fault_after: Optional[int] = None
        self._outcomes: Dict[tuple, ServeCaseOutcome] = {}

    # --------------------------------------------------------------- running

    def run_spec(self, spec: ServeSpec) -> ServeCaseOutcome:
        """Serve one case (memoised by the full spec)."""
        if spec.key in self._outcomes:
            return self._outcomes[spec.key]
        cache_key = None
        if self.cache is not None:
            from repro.harness.cache import serve_key
            cache_key = serve_key(self.gpu, spec.payload())
            cached = self.cache.get_serve(cache_key)
            if cached is not None:
                outcome = ServeCaseOutcome.from_value(cached)
                self._outcomes[spec.key] = outcome
                return outcome
        outcome = self._serve(spec)
        self._outcomes[spec.key] = outcome
        if cache_key is not None:
            self.cache.put_serve(cache_key, outcome.to_value())
        return outcome

    def _serve(self, spec: ServeSpec) -> ServeCaseOutcome:
        requests = spec.build_process().generate(spec.horizon_cycles)
        dispatcher = Dispatcher(self.gpu, policy=make_policy(spec.policy),
                                admission=spec.build_admission(),
                                max_concurrent=spec.max_concurrent)
        result = dispatcher.serve(requests, spec.horizon_cycles)
        return ServeCaseOutcome(
            records=result.records,
            horizon_cycles=result.horizon_cycles,
            generated=result.generated,
            admitted=result.admitted,
            rejected=result.rejected,
            completed=result.completed,
            unfinished=result.unfinished)

    # ---------------------------------------------------------------- sweeps

    def sweep(self, specs: Sequence[ServeSpec],
              register: bool = True) -> List[ServeCaseOutcome]:
        """Run a batch of serving cases, returning outcomes in input order.

        Identical contract to :meth:`repro.harness.runner.CaseRunner.sweep`:
        the grid is registered in the experiment store (persistent when the
        runner has one and ``register`` is True, throwaway in-memory
        otherwise) and cases are pulled one claim at a time, so an
        interrupted load sweep resumes where it stopped and converges on
        outcomes byte-identical to an uninterrupted run.
        """
        specs = list(specs)
        if not specs:
            return []
        sweep_reg = self._register_sweep(specs, register)
        try:
            self._pull_pending(sweep_reg)
        finally:
            sweep_reg.db.finish(sweep_reg.experiment_id)
            if not sweep_reg.persistent:
                sweep_reg.db.close()
        return [self.run_spec(spec) for spec in specs]

    def _register_sweep(self, specs: Sequence[ServeSpec], register: bool):
        from repro.harness.cache import (code_salt, experiment_id_for,
                                         experiment_spec_hash, serve_key,
                                         serve_grid_payload)
        from repro.harness.expdb import ExperimentDB
        from repro.harness.runner import RegisteredSweep

        payloads = [spec.payload() for spec in specs]
        grid = serve_grid_payload(self.gpu, payloads)
        spec_hash = experiment_spec_hash(grid)
        experiment_id = experiment_id_for(spec_hash)
        persistent = register and self.expdb is not None
        db = self.expdb if persistent else ExperimentDB(":memory:")
        case_rows = [(payload, serve_key(self.gpu, payload))
                     for payload in payloads]
        db.register(experiment_id, spec_hash, code_salt(), grid, case_rows)
        if persistent:
            self.experiment_log.append((experiment_id, spec_hash))
        return RegisteredSweep(db, experiment_id, spec_hash, persistent)

    def _fault_check(self, completed: int) -> None:
        if self.fault_after is not None and completed >= self.fault_after:
            raise SweepInterrupted(
                f"fault injected after {completed} completed serving cases")

    def _pull_pending(self, sweep_reg) -> None:
        """Claim and run pending cases until the table drains; fan out over
        an inline process pool when the runner has more than one worker."""
        db, experiment_id = sweep_reg.db, sweep_reg.experiment_id
        db.release_stale(experiment_id)
        if self.workers > 1:
            from repro.harness.expdb import PENDING
            pending = sum(1 for row in db.cases(experiment_id)
                          if row["status"] == PENDING)
            if pending > 1 and self._pull_through_pool(sweep_reg):
                return
        self._pull_serial(sweep_reg)

    def _pull_serial(self, sweep_reg) -> None:
        db, experiment_id = sweep_reg.db, sweep_reg.experiment_id
        worker = f"serve-serial:{os.getpid()}"
        completed = 0
        while True:
            claim = db.claim_next(experiment_id, worker)
            if claim is None:
                break
            case_index, payload = claim
            spec = ServeSpec.from_payload(payload)
            try:
                self.run_spec(spec)
            except BaseException as error:
                db.mark_failed(experiment_id, case_index, repr(error))
                raise
            db.mark_done(experiment_id, case_index)
            completed += 1
            self._fault_check(completed)

    def _pull_through_pool(self, sweep_reg) -> bool:
        """Parallel claim loop; returns False when no pool is available so
        the caller falls back to the serial path (sandboxes without process
        spawning stay correct, just slower)."""
        try:
            from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                            ProcessPoolExecutor, wait)
            pool = ProcessPoolExecutor(max_workers=self.workers,
                                       initializer=_serve_worker_init,
                                       initargs=(self.gpu,))
        except (OSError, PermissionError, ImportError):
            return False
        db, experiment_id = sweep_reg.db, sweep_reg.experiment_id
        worker = f"serve-pool:{os.getpid()}"
        completed = 0
        inflight: Dict[object, Tuple[ServeSpec, List[int]]] = {}
        by_key: Dict[tuple, object] = {}
        drained = False
        try:
            while True:
                while not drained and len(inflight) < self.workers:
                    claim = db.claim_next(experiment_id, worker)
                    if claim is None:
                        drained = True
                        break
                    case_index, payload = claim
                    spec = ServeSpec.from_payload(payload)
                    if spec.key in self._outcomes or self._load_cached(spec):
                        db.mark_done(experiment_id, case_index)
                        completed += 1
                        self._fault_check(completed)
                        continue
                    twin = by_key.get(spec.key)
                    if twin is not None:
                        inflight[twin][1].append(case_index)
                        continue
                    future = pool.submit(_run_serve_task, spec)
                    inflight[future] = (spec, [case_index])
                    by_key[spec.key] = future
                if not inflight:
                    break
                done_set, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done_set:
                    spec, case_indices = inflight.pop(future)
                    by_key.pop(spec.key, None)
                    try:
                        outcome = future.result()
                    except SweepInterrupted:
                        raise
                    except BaseException as error:
                        if isinstance(error, (BrokenExecutor, OSError,
                                              PermissionError)):
                            # The pool died under us: release the in-flight
                            # claims and let the serial path finish.
                            db.release_stale(experiment_id)
                            return False
                        for case_index in case_indices:
                            db.mark_failed(experiment_id, case_index,
                                           repr(error))
                        raise
                    self._outcomes[spec.key] = outcome
                    self._store_outcome(spec, outcome)
                    for case_index in case_indices:
                        db.mark_done(experiment_id, case_index)
                        completed += 1
                    self._fault_check(completed)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return True

    # ------------------------------------------------------------ cache glue

    def _load_cached(self, spec: ServeSpec) -> bool:
        if self.cache is None:
            return False
        from repro.harness.cache import serve_key
        cached = self.cache.get_serve(serve_key(self.gpu, spec.payload()))
        if cached is None:
            return False
        self._outcomes[spec.key] = ServeCaseOutcome.from_value(cached)
        return True

    def _store_outcome(self, spec: ServeSpec,
                       outcome: ServeCaseOutcome) -> None:
        if self.cache is None:
            return
        from repro.harness.cache import serve_key
        self.cache.put_serve(serve_key(self.gpu, spec.payload()),
                             outcome.to_value())

    @property
    def cached_cases(self) -> int:
        return len(self._outcomes)
