"""Request-level metrics and SLO scoring for the serving layer.

Epoch telemetry (:mod:`repro.sim.telemetry`) answers "what was the machine
doing"; this module answers "what did each *request* experience".  One
:class:`RequestRecord` per generated request carries its full lifecycle —
arrival, admission verdict, launch, completion — plus the derived queue-
wait / service / end-to-end latencies, and the summary helpers reduce a
record stream to the numbers serving papers report: per-class p50/p95/p99
latency and SLO attainment.

The JSONL export mirrors :mod:`repro.trace.jsonl`: a ``{"kind": "meta"}``
header carrying ``request_schema_version`` followed by one
``{"kind": "request"}`` line per record, and the reader validates every
line strictly (exact field set, exact types) so a stale or hand-mangled
trace fails loudly instead of decoding into garbage.

Everything here is pure accounting over integers already produced by the
deterministic simulator — no floats feed back into results, and the
percentile definition (nearest-rank) is exact, so summaries are
byte-reproducible across machines and engine cores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Bump when the request-record field set changes; readers reject other
#: versions.
REQUEST_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle of one request through the serving dispatcher.

    Cycle fields are ``None`` until the corresponding event happened:
    a rejected request has no ``start_cycle``; a request still queued or
    running at the horizon has no ``finish_cycle``.  ``slo_met`` is False
    for any request that did not complete within its SLO — including
    rejected and unfinished ones, which is what makes attainment an
    honest end-to-end score.
    """

    request_id: int
    request_class: str
    kernel: str
    arrival_cycle: int
    slo_cycles: int
    grid_tbs: int
    admitted: bool
    reject_reason: Optional[str]
    start_cycle: Optional[int]
    finish_cycle: Optional[int]
    queue_wait_cycles: Optional[int]
    service_cycles: Optional[int]
    latency_cycles: Optional[int]
    completed: bool
    slo_met: bool


_INT_FIELDS = ("request_id", "arrival_cycle", "slo_cycles", "grid_tbs")
_OPT_INT_FIELDS = ("start_cycle", "finish_cycle", "queue_wait_cycles",
                   "service_cycles", "latency_cycles")
_STR_FIELDS = ("request_class", "kernel")
_BOOL_FIELDS = ("admitted", "completed", "slo_met")
_ALL_FIELDS = (_INT_FIELDS + _OPT_INT_FIELDS + _STR_FIELDS + _BOOL_FIELDS
               + ("reject_reason",))


def request_record_to_dict(record: RequestRecord) -> dict:
    return {field: getattr(record, field) for field in _ALL_FIELDS}


def request_record_from_dict(payload: Mapping) -> RequestRecord:
    validate_request_dict(payload)
    return RequestRecord(**{field: payload[field] for field in _ALL_FIELDS})


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def validate_request_dict(payload: Mapping) -> None:
    """Strict schema check: exact field set, exact types.

    Raises ``ValueError`` with the first offending field, mirroring
    :func:`repro.sim.telemetry.validate_epoch_dict`.
    """
    expected = set(_ALL_FIELDS)
    actual = set(payload.keys())
    if actual != expected:
        missing = sorted(expected - actual)
        extra = sorted(actual - expected)
        raise ValueError(
            f"request record fields mismatch: missing={missing} extra={extra}")
    for field in _INT_FIELDS:
        if not _is_int(payload[field]):
            raise ValueError(f"request field {field} must be an int, "
                             f"got {payload[field]!r}")
    for field in _OPT_INT_FIELDS:
        value = payload[field]
        if value is not None and not _is_int(value):
            raise ValueError(f"request field {field} must be an int or None, "
                             f"got {value!r}")
    for field in _STR_FIELDS:
        if not isinstance(payload[field], str):
            raise ValueError(f"request field {field} must be a str, "
                             f"got {payload[field]!r}")
    for field in _BOOL_FIELDS:
        if not isinstance(payload[field], bool):
            raise ValueError(f"request field {field} must be a bool, "
                             f"got {payload[field]!r}")
    reason = payload["reject_reason"]
    if reason is not None and not isinstance(reason, str):
        raise ValueError(f"request field reject_reason must be a str or "
                         f"None, got {reason!r}")


# ------------------------------------------------------------------ summaries


def percentile(values: Sequence[int], fraction: float) -> Optional[int]:
    """Nearest-rank percentile over a sequence of cycle counts.

    Exact (no interpolation) so summaries stay integer-valued and
    byte-reproducible; returns ``None`` for an empty sequence.
    """
    if not values:
        return None
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(values)
    rank = max(1, -(-int(fraction * 1000) * len(ordered) // 1000))
    if rank > len(ordered):
        rank = len(ordered)
    return ordered[rank - 1]


def class_summary(records: Sequence[RequestRecord]) -> Dict[str, dict]:
    """Per-class reduction: counts, latency percentiles, SLO attainment.

    Keys are class names in first-arrival order.  ``slo_attainment`` is
    requests that completed within their SLO over *all* generated requests
    of the class (rejections and horizon-unfinished requests count as
    misses).
    """
    by_class: Dict[str, List[RequestRecord]] = {}
    for record in records:
        by_class.setdefault(record.request_class, []).append(record)
    summary: Dict[str, dict] = {}
    for name, group in by_class.items():
        latencies = [r.latency_cycles for r in group
                     if r.latency_cycles is not None]
        waits = [r.queue_wait_cycles for r in group
                 if r.queue_wait_cycles is not None]
        services = [r.service_cycles for r in group
                    if r.service_cycles is not None]
        met = sum(1 for r in group if r.slo_met)
        summary[name] = {
            "requests": len(group),
            "admitted": sum(1 for r in group if r.admitted),
            "rejected": sum(1 for r in group if not r.admitted),
            "completed": sum(1 for r in group if r.completed),
            "p50_latency": percentile(latencies, 0.50),
            "p95_latency": percentile(latencies, 0.95),
            "p99_latency": percentile(latencies, 0.99),
            "p50_queue_wait": percentile(waits, 0.50),
            "p99_queue_wait": percentile(waits, 0.99),
            "p50_service": percentile(services, 0.50),
            "slo_attainment": met / len(group),
        }
    return summary


def latency_cdf(records: Sequence[RequestRecord],
                points: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90,
                                           0.95, 0.99, 1.00),
                ) -> List[Tuple[str, Dict[str, Optional[int]]]]:
    """Latency CDF sample points per class: ``[(class, {"p50": ...}), ...]``.

    This is the figure backing the serving evaluation's latency-CDF plot,
    rendered as a table by the harness (the repo's figures are ASCII).
    """
    by_class: Dict[str, List[int]] = {}
    for record in records:
        if record.latency_cycles is not None:
            by_class.setdefault(record.request_class, []).append(
                record.latency_cycles)
    rows: List[Tuple[str, Dict[str, Optional[int]]]] = []
    for name, latencies in by_class.items():
        rows.append((name, {
            f"p{int(round(point * 100)):02d}": percentile(latencies, point)
            for point in points
        }))
    return rows


# ---------------------------------------------------------------- JSONL trace


def write_request_trace(stream: IO[str], records: Iterable[RequestRecord],
                        meta: Optional[Mapping] = None) -> int:
    """Write a meta line plus one line per request record; returns count."""
    header = {"kind": "meta",
              "request_schema_version": REQUEST_SCHEMA_VERSION}
    if meta:
        header.update(meta)
        header["kind"] = "meta"  # provenance must not smuggle a kind
        header["request_schema_version"] = REQUEST_SCHEMA_VERSION
    stream.write(json.dumps(header, sort_keys=True) + "\n")
    count = 0
    for record in records:
        payload = request_record_to_dict(record)
        payload["kind"] = "request"
        stream.write(json.dumps(payload, sort_keys=True) + "\n")
        count += 1
    return count


def read_request_trace(stream: IO[str]) -> Tuple[dict, List[RequestRecord]]:
    """Parse and strictly validate a request trace: ``(meta, records)``."""
    meta: Optional[dict] = None
    records: List[RequestRecord] = []
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError as error:
            raise ValueError(f"request trace line {line_no}: not JSON "
                             f"({error})")
        kind = payload.get("kind") if isinstance(payload, dict) else None
        if meta is None:
            if kind != "meta":
                raise ValueError(
                    f"request trace line {line_no}: expected a meta header "
                    f"line, got kind={kind!r}")
            version = payload.get("request_schema_version")
            if version != REQUEST_SCHEMA_VERSION:
                raise ValueError(
                    f"request trace schema version {version!r} does not "
                    f"match expected {REQUEST_SCHEMA_VERSION}")
            meta = payload
            continue
        if kind != "request":
            raise ValueError(
                f"request trace line {line_no}: unknown kind {kind!r}")
        body = {key: value for key, value in payload.items()
                if key != "kind"}
        try:
            records.append(request_record_from_dict(body))
        except ValueError as error:
            raise ValueError(f"request trace line {line_no}: {error}")
    if meta is None:
        raise ValueError("request trace is empty: no meta header line")
    return meta, records
