from setuptools import setup

# All metadata — including install deps (numpy for the batch engine core) —
# lives in pyproject.toml; this stub exists for legacy tooling.
setup()
